"""Hash and CSR indexes over relation columns.

The paper replaces the B-tree indexes assumed by Zhao et al. with hash tables
that record, for every join-attribute value, the positions of the rows holding
that value ("we use hash tables for relations to maintain tuples' joinability
information", §3.2).  :class:`HashIndex` is exactly that structure; it backs

* joinability lookups during join sampling and random walks,
* degree lookups (`d_A(v, R)`) during weight computation,
* membership probes of the random-walk overlap estimator.

:class:`SortedIndex` is the columnar companion used by the batched sampling
engine: the same value -> positions mapping laid out as one contiguous
positions array plus a CSR offsets array, so that "joinable rows for a batch
of parent keys" is a handful of NumPy gathers instead of per-row dict lookups.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np


class HashIndex:
    """Value -> row-position index for one attribute of a relation."""

    __slots__ = ("attribute", "_buckets", "_max_degree", "_total_rows")

    def __init__(self, attribute: str, buckets: Dict[object, Sequence[int]]) -> None:
        self.attribute = attribute
        # Buckets are stored as tuples so that lookups hand out read-only
        # views: callers cannot corrupt the index by mutating a result.
        self._buckets: Dict[object, Tuple[int, ...]] = {
            value: tuple(positions) for value, positions in buckets.items()
        }
        self._max_degree = max((len(v) for v in self._buckets.values()), default=0)
        self._total_rows = sum(len(v) for v in self._buckets.values())

    @classmethod
    def build(cls, values: Iterable[object], attribute: str = "") -> "HashIndex":
        """Build an index from the column's values in row order."""
        buckets: Dict[object, List[int]] = defaultdict(list)
        for position, value in enumerate(values):
            buckets[value].append(position)
        return cls(attribute, buckets)

    # ----------------------------------------------------------------- lookups
    def positions(self, value: object) -> Tuple[int, ...]:
        """Row positions whose attribute equals ``value`` (empty if none)."""
        return self._buckets.get(value, ())

    def degree(self, value: object) -> int:
        """Number of rows whose attribute equals ``value``."""
        return len(self._buckets.get(value, ()))

    def __contains__(self, value: object) -> bool:
        return value in self._buckets

    def __len__(self) -> int:
        """Number of distinct values."""
        return len(self._buckets)

    def values(self) -> Iterator[object]:
        """Iterate over the distinct indexed values."""
        return iter(self._buckets)

    def items(self) -> Iterator[Tuple[object, Tuple[int, ...]]]:
        """Iterate over ``(value, positions)`` pairs."""
        return iter(self._buckets.items())

    # -------------------------------------------------------------- statistics
    @property
    def max_degree(self) -> int:
        """Maximum number of rows sharing one value (``M_A(R)``)."""
        return self._max_degree

    @property
    def total_rows(self) -> int:
        """Total number of indexed rows (cached at build time)."""
        return self._total_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashIndex(attribute={self.attribute!r}, distinct={len(self)}, "
            f"max_degree={self.max_degree})"
        )


class SortedIndex:
    """CSR layout of a :class:`HashIndex`: positions grouped by key.

    Attributes
    ----------
    row_positions:
        One contiguous int array holding the row positions of every key,
        grouped key-by-key.
    offsets:
        CSR offsets of length ``n_keys + 1``: the positions of key slot ``i``
        are ``row_positions[offsets[i]:offsets[i + 1]]``.  Every slot is
        non-empty by construction (a key only exists if some row holds it).

    Key values map to slots either through a vectorized ``searchsorted`` over
    a sorted key array (homogeneous numeric/string keys) or through a plain
    dict (tuples and mixed types).
    """

    __slots__ = (
        "attribute",
        "row_positions",
        "offsets",
        "_slot_of",
        "_sorted_keys",
        "_sorted_slots",
    )

    def __init__(
        self,
        attribute: str,
        keys: Sequence[object],
        row_positions: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.attribute = attribute
        self.row_positions = np.asarray(row_positions, dtype=np.intp)
        self.offsets = np.asarray(offsets, dtype=np.intp)
        # Lookups hand out views of these arrays; keep them read-only so
        # callers cannot corrupt the index (same invariant as HashIndex).
        self.row_positions.setflags(write=False)
        self.offsets.setflags(write=False)
        self._slot_of: Dict[object, int] = {key: i for i, key in enumerate(keys)}
        self._sorted_keys: np.ndarray | None = None
        self._sorted_slots: np.ndarray | None = None
        if keys and len({type(k) for k in keys}) == 1:
            # Mixed-type keys must stay on the dict path: np.asarray would
            # silently stringify them and corrupt the searchsorted lookup.
            try:
                key_array = np.asarray(list(keys))
            except (ValueError, TypeError):  # pragma: no cover - exotic keys
                key_array = np.empty(0, dtype=object)
            if key_array.ndim == 1 and key_array.dtype != object:
                order = np.argsort(key_array, kind="stable")
                self._sorted_keys = key_array[order]
                self._sorted_slots = np.asarray(order, dtype=np.intp)

    @classmethod
    def from_hash_index(cls, index: HashIndex) -> "SortedIndex":
        """CSR view of an existing hash index (shares no mutable state)."""
        keys: List[object] = []
        degrees: List[int] = []
        chunks: List[Tuple[int, ...]] = []
        for value, positions in index.items():
            keys.append(value)
            degrees.append(len(positions))
            chunks.append(positions)
        offsets = np.zeros(len(keys) + 1, dtype=np.intp)
        if degrees:
            offsets[1:] = np.cumsum(degrees)
        flat = np.fromiter(
            (p for chunk in chunks for p in chunk), dtype=np.intp, count=int(offsets[-1])
        )
        return cls(index.attribute, keys, flat, offsets)

    # ------------------------------------------------------------------- slots
    @property
    def n_keys(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_rows(self) -> int:
        return int(self.offsets[-1]) if len(self.offsets) else 0

    def slot(self, value: object) -> int:
        """Slot id of ``value`` (-1 when absent)."""
        return self._slot_of.get(value, -1)

    def slots_for(self, values: Sequence[object] | np.ndarray) -> np.ndarray:
        """Slot ids for a batch of key values (-1 where absent).

        Homogeneous non-object key columns resolve through one vectorized
        ``searchsorted``; tuple/mixed keys fall back to dict lookups in a
        single ``fromiter`` pass.
        """
        if self._sorted_keys is not None and isinstance(values, np.ndarray):
            if values.dtype != object and values.ndim == 1:
                n = len(self._sorted_keys)
                idx = np.searchsorted(self._sorted_keys, values)
                idx_clipped = np.minimum(idx, n - 1)
                found = self._sorted_keys[idx_clipped] == values
                slots = np.where(found, self._sorted_slots[idx_clipped], -1)
                return np.asarray(slots, dtype=np.intp)
        get = self._slot_of.get
        return np.fromiter(
            (get(v, -1) for v in values), dtype=np.intp, count=len(values)
        )

    # ----------------------------------------------------------------- lookups
    def positions(self, value: object) -> np.ndarray:
        """Row positions for one key value (empty array when absent)."""
        slot = self.slot(value)
        if slot < 0:
            return self.row_positions[:0]
        return self.row_positions[self.offsets[slot] : self.offsets[slot + 1]]

    def degree(self, value: object) -> int:
        slot = self.slot(value)
        if slot < 0:
            return 0
        return int(self.offsets[slot + 1] - self.offsets[slot])

    def degrees(self) -> np.ndarray:
        """Per-slot degrees (length ``n_keys``)."""
        return np.diff(self.offsets)

    def __contains__(self, value: object) -> bool:
        return value in self._slot_of

    def __len__(self) -> int:
        return self.n_keys

    # ------------------------------------------------------------ aggregation
    def segment_sums(self, row_values: np.ndarray) -> np.ndarray:
        """Per-key sums of ``row_values`` (indexed by row position).

        Equivalent to ``[row_values[positions].sum() for each key]`` but
        computed with one gather and one ``np.add.reduceat``.
        """
        if self.n_keys == 0:
            return np.zeros(0, dtype=float)
        gathered = np.asarray(row_values, dtype=float)[self.row_positions]
        return np.add.reduceat(gathered, self.offsets[:-1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortedIndex(attribute={self.attribute!r}, keys={self.n_keys}, "
            f"rows={self.total_rows})"
        )


__all__ = ["HashIndex", "SortedIndex"]
