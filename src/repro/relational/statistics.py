"""Column statistics: histograms, degrees, and summary metadata.

The histogram-based overlap estimator (paper §5) is designed for the
*decentralized* setting where only limited metadata about relations is
available — value-frequency histograms on join attributes and maximum degrees.
:class:`ColumnStatistics` captures exactly those statistics for one column,
and :class:`EquiWidthHistogram` offers the bucketed variant a DBMS would keep
when the exact frequency map is too large to ship.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class ColumnStatistics:
    """Exact value-frequency statistics for one column.

    This models what the paper calls the histogram on a join attribute: the
    degree ``d_A(v, R)`` of every value, the maximum degree ``M_A(R)``, and
    the average degree.
    """

    __slots__ = ("attribute", "_frequencies", "row_count")

    def __init__(self, attribute: str, frequencies: Mapping[object, int]) -> None:
        for value, count in frequencies.items():
            if count < 0:
                raise ValueError(f"negative frequency for value {value!r}")
        self.attribute = attribute
        self._frequencies: Dict[object, int] = dict(frequencies)
        self.row_count = sum(self._frequencies.values())

    @classmethod
    def from_values(cls, attribute: str, values: Iterable[object]) -> "ColumnStatistics":
        freq: Dict[object, int] = {}
        for v in values:
            freq[v] = freq.get(v, 0) + 1
        return cls(attribute, freq)

    # ------------------------------------------------------------- maintenance
    def apply_delta(self, removed: Iterable[object], added: Iterable[object]) -> None:
        """Apply one mutation batch: O(Δ) frequency adjustments.

        ``removed``/``added`` are the column values of the rows a
        :class:`~repro.relational.delta.RelationDelta` deleted/inserted (moves
        do not change frequencies).  Frequencies that reach zero are dropped so
        membership checks stay exact.
        """
        freq = self._frequencies
        for value in removed:
            count = freq.get(value, 0) - 1
            if count < 0:
                raise ValueError(
                    f"delta removes value {value!r} absent from column "
                    f"{self.attribute!r} statistics"
                )
            if count == 0:
                del freq[value]
            else:
                freq[value] = count
            self.row_count -= 1
        for value in added:
            freq[value] = freq.get(value, 0) + 1
            self.row_count += 1

    # ----------------------------------------------------------------- degrees
    def degree(self, value: object) -> int:
        """``d_A(v, R)``: number of rows with this value (0 when absent)."""
        return self._frequencies.get(value, 0)

    @property
    def max_degree(self) -> int:
        """``M_A(R)``: maximum value frequency (0 for an empty column)."""
        return max(self._frequencies.values(), default=0)

    @property
    def average_degree(self) -> float:
        """Mean frequency over distinct values (0.0 for an empty column)."""
        if not self._frequencies:
            return 0.0
        return self.row_count / len(self._frequencies)

    @property
    def distinct_count(self) -> int:
        return len(self._frequencies)

    def values(self) -> Iterable[object]:
        """Distinct values present in the column."""
        return self._frequencies.keys()

    def frequencies(self) -> Mapping[object, int]:
        """Read-only view of the value -> frequency map."""
        return dict(self._frequencies)

    # -------------------------------------------------------------- summaries
    def common_values(self, limit: int = 10) -> List[Tuple[object, int]]:
        """The ``limit`` most frequent values, most frequent first."""
        return sorted(self._frequencies.items(), key=lambda kv: (-kv[1], str(kv[0])))[:limit]

    def skew(self) -> float:
        """Ratio of max degree to average degree (1.0 means uniform)."""
        avg = self.average_degree
        if avg == 0:
            return 0.0
        return self.max_degree / avg

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnStatistics({self.attribute!r}, rows={self.row_count}, "
            f"distinct={self.distinct_count}, max_degree={self.max_degree})"
        )


@dataclass(frozen=True)
class HistogramBucket:
    """One bucket of an equi-width histogram over an ordered domain."""

    lower: float
    upper: float
    row_count: int
    distinct_count: int

    @property
    def average_degree(self) -> float:
        if self.distinct_count == 0:
            return 0.0
        return self.row_count / self.distinct_count


class EquiWidthHistogram:
    """Bucketed histogram for numeric columns.

    Database systems keep bucketed (rather than exact) histograms; this class
    reproduces that shape so that the histogram-based estimator can also be
    instantiated with coarse statistics.  ``degree_upper_bound`` returns a per
    value bound derived from the containing bucket.
    """

    def __init__(self, attribute: str, buckets: Sequence[HistogramBucket]) -> None:
        self.attribute = attribute
        self.buckets = list(buckets)
        for earlier, later in zip(self.buckets, self.buckets[1:]):
            if later.lower < earlier.upper:
                raise ValueError("histogram buckets must be non-overlapping and sorted")

    @classmethod
    def from_values(
        cls,
        attribute: str,
        values: Sequence[float],
        bucket_count: int = 16,
    ) -> "EquiWidthHistogram":
        if bucket_count <= 0:
            raise ValueError("bucket_count must be positive")
        if len(values) == 0:
            return cls(attribute, [])
        lo, hi = float(min(values)), float(max(values))
        if lo == hi:
            stats = ColumnStatistics.from_values(attribute, values)
            bucket = HistogramBucket(lo, hi, len(values), stats.distinct_count)
            return cls(attribute, [bucket])
        width = (hi - lo) / bucket_count
        counts = [0] * bucket_count
        distinct: List[set] = [set() for _ in range(bucket_count)]
        for v in values:
            idx = min(int((float(v) - lo) / width), bucket_count - 1)
            counts[idx] += 1
            distinct[idx].add(v)
        buckets = [
            HistogramBucket(lo + i * width, lo + (i + 1) * width, counts[i], len(distinct[i]))
            for i in range(bucket_count)
            if counts[i] > 0
        ]
        return cls(attribute, buckets)

    # ----------------------------------------------------------------- queries
    @property
    def row_count(self) -> int:
        return sum(b.row_count for b in self.buckets)

    def bucket_for(self, value: float) -> Optional[HistogramBucket]:
        """The bucket containing ``value`` (None when out of range)."""
        for bucket in self.buckets:
            if bucket.lower <= value <= bucket.upper:
                return bucket
        return None

    def degree_upper_bound(self, value: float) -> int:
        """Upper bound on the frequency of ``value`` (bucket row count)."""
        bucket = self.bucket_for(value)
        return bucket.row_count if bucket is not None else 0

    def degree_estimate(self, value: float) -> float:
        """Estimated frequency of ``value`` assuming uniformity within its bucket."""
        bucket = self.bucket_for(value)
        if bucket is None:
            return 0.0
        return bucket.average_degree

    def max_degree_upper_bound(self) -> int:
        """Upper bound on the maximum degree across the whole column."""
        return max((b.row_count for b in self.buckets), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EquiWidthHistogram({self.attribute!r}, buckets={len(self.buckets)})"


def merge_statistics(stats: Sequence[ColumnStatistics], attribute: str = "") -> ColumnStatistics:
    """Combine statistics of the same logical column from several fragments.

    Used when a relation is split horizontally (e.g. the UQ3 workload) and the
    estimator only has fragment-level statistics.
    """
    merged: Dict[object, int] = {}
    for s in stats:
        for value, count in s.frequencies().items():
            merged[value] = merged.get(value, 0) + count
    name = attribute or (stats[0].attribute if stats else "")
    return ColumnStatistics(name, merged)


__all__ = [
    "ColumnStatistics",
    "EquiWidthHistogram",
    "HistogramBucket",
    "merge_statistics",
]
