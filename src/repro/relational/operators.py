"""Physical operators for the in-memory engine.

These operators exist to provide *ground truth* for the sampling framework:
``FullJoinUnion`` in the paper executes the full joins and unions the results
to obtain exact join, overlap, and union sizes.  They are deliberately simple
(hash joins, list materialization) — their purpose is correctness, not speed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema


def hash_join(
    left: Relation,
    right: Relation,
    left_attr: str,
    right_attr: str,
    name: Optional[str] = None,
) -> Relation:
    """Equi-join ``left`` and ``right`` on ``left_attr == right_attr``.

    The output schema is the concatenation of both schemas, with the right
    relation's attributes renamed ``<right.name>.<attr>`` when a name clash
    would otherwise occur.  The join attribute from the right side is kept
    (renamed if clashing) so downstream joins can still reference it.
    """
    left_names = set(left.schema.names)
    renamed_attrs: List[Attribute] = []
    rename_map: Dict[str, str] = {}
    for attr in right.schema:
        if attr.name in left_names:
            new_name = f"{right.name}.{attr.name}"
            rename_map[attr.name] = new_name
            renamed_attrs.append(Attribute(new_name, attr.dtype))
        else:
            renamed_attrs.append(attr)
    out_schema = Schema(list(left.schema.attributes) + renamed_attrs)

    index = right.index_on(right_attr)
    left_pos = left.schema.position(left_attr)
    out_rows: List[Row] = []
    for lrow in left:
        for rpos in index.positions(lrow[left_pos]):
            out_rows.append(lrow + right.row(rpos))
    return Relation(name or f"{left.name}_join_{right.name}", out_schema, out_rows)


def natural_join(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Join on all attributes the two schemas share (at least one required)."""
    common = [a for a in left.schema.names if a in right.schema.names]
    if not common:
        raise ValueError(
            f"relations {left.name!r} and {right.name!r} share no attributes"
        )
    left_positions = left.schema.positions(common)
    right_positions = right.schema.positions(common)
    keep_right = [a for a in right.schema.names if a not in common]
    keep_right_positions = right.schema.positions(keep_right)
    out_schema = Schema(
        list(left.schema.attributes) + [right.schema.attribute(a) for a in keep_right]
    )
    buckets: Dict[Tuple, List[int]] = defaultdict(list)
    for i, rrow in enumerate(right):
        buckets[tuple(rrow[p] for p in right_positions)].append(i)
    out_rows: List[Row] = []
    for lrow in left:
        key = tuple(lrow[p] for p in left_positions)
        for i in buckets.get(key, ()):
            rrow = right.row(i)
            out_rows.append(lrow + tuple(rrow[p] for p in keep_right_positions))
    return Relation(name or f"{left.name}_njoin_{right.name}", out_schema, out_rows)


def selection(relation: Relation, predicate, name: Optional[str] = None) -> Relation:
    """Rows of ``relation`` satisfying ``predicate`` (see relational.predicates)."""
    return relation.select(predicate, name=name)


def projection(
    relation: Relation, attributes: Sequence[str], name: Optional[str] = None
) -> Relation:
    """Projection onto ``attributes`` (bag semantics — duplicates preserved)."""
    return relation.project(attributes, name=name)


def set_union(relations: Sequence[Relation], name: str = "union") -> Relation:
    """Set union: duplicate rows across (and within) inputs removed.

    All inputs must have aligned schemas (same attribute names, same order).
    """
    _check_aligned(relations)
    seen: set[Row] = set()
    rows: List[Row] = []
    for rel in relations:
        for row in rel:
            if row not in seen:
                seen.add(row)
                rows.append(row)
    schema = relations[0].schema if relations else Schema([])
    return Relation(name, schema, rows)


def disjoint_union(relations: Sequence[Relation], name: str = "disjoint_union") -> Relation:
    """Disjoint (bag) union: all rows kept, duplicates included."""
    _check_aligned(relations)
    rows: List[Row] = []
    for rel in relations:
        rows.extend(rel.rows)
    schema = relations[0].schema if relations else Schema([])
    return Relation(name, schema, rows)


def intersection(relations: Sequence[Relation], name: str = "intersection") -> Relation:
    """Set intersection of several aligned relations."""
    _check_aligned(relations)
    if not relations:
        return Relation(name, Schema([]), [])
    common: set[Row] = set(relations[0].rows)
    for rel in relations[1:]:
        common &= set(rel.rows)
    # Preserve first-relation order for determinism.
    rows = [r for r in dict.fromkeys(relations[0].rows) if r in common]
    return Relation(name, relations[0].schema, rows)


def difference(left: Relation, right: Relation, name: str = "difference") -> Relation:
    """Set difference ``left - right`` over aligned schemas."""
    _check_aligned([left, right])
    right_rows = set(right.rows)
    rows = [r for r in dict.fromkeys(left.rows) if r not in right_rows]
    return Relation(name, left.schema, rows)


def _check_aligned(relations: Sequence[Relation]) -> None:
    if not relations:
        return
    base = relations[0].schema
    for rel in relations[1:]:
        if not base.aligns_with(rel.schema):
            raise ValueError(
                "relations are not union-compatible: "
                f"{base.names} vs {rel.schema.names} ({rel.name})"
            )


__all__ = [
    "hash_join",
    "natural_join",
    "selection",
    "projection",
    "set_union",
    "disjoint_union",
    "intersection",
    "difference",
]
