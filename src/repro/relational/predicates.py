"""Selection predicates.

Paper §8.3 supports selection predicates either by pushing them down into
base relations before sampling, or by checking them during sampling with an
extra rejection factor.  Both paths need a small predicate algebra, which this
module provides: comparisons, membership, range, conjunction, disjunction and
negation, all evaluated against a row + schema pair.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Tuple

from repro.relational.schema import Schema

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate(ABC):
    """Base class for all selection predicates."""

    @abstractmethod
    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        """Whether ``row`` (interpreted under ``schema``) satisfies the predicate."""

    @abstractmethod
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names referenced by this predicate."""

    # Allow composing predicates with ``&``, ``|`` and ``~``.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __call__(self, row: Sequence, schema: Schema) -> bool:
        return self.evaluate(row, schema)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Predicate that accepts every row (neutral element for conjunction)."""

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        return True

    def attributes(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attribute <op> constant`` with ``op`` in ==, !=, <, <=, >, >=."""

    attribute: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        return _COMPARATORS[self.op](row[schema.position(self.attribute)], self.value)

    def attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class InSet(Predicate):
    """``attribute IN (v1, v2, ...)``."""

    attribute: str
    values: frozenset

    def __init__(self, attribute: str, values: Iterable[object]) -> None:
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", frozenset(values))

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        return row[schema.position(self.attribute)] in self.values

    def attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= attribute <= high`` (inclusive range)."""

    attribute: str
    low: object
    high: object

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        value = row[schema.position(self.attribute)]
        return self.low <= value <= self.high

    def attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)


class And(Predicate):
    """Conjunction of predicates (true when all children are true)."""

    def __init__(self, children: Iterable[Predicate]) -> None:
        self.children = tuple(children)

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        return all(child.evaluate(row, schema) for child in self.children)

    def attributes(self) -> Tuple[str, ...]:
        names: list[str] = []
        for child in self.children:
            names.extend(child.attributes())
        return tuple(dict.fromkeys(names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"And({list(self.children)!r})"


class Or(Predicate):
    """Disjunction of predicates (true when any child is true)."""

    def __init__(self, children: Iterable[Predicate]) -> None:
        self.children = tuple(children)

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        return any(child.evaluate(row, schema) for child in self.children)

    def attributes(self) -> Tuple[str, ...]:
        names: list[str] = []
        for child in self.children:
            names.extend(child.attributes())
        return tuple(dict.fromkeys(names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Or({list(self.children)!r})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    child: Predicate

    def evaluate(self, row: Sequence, schema: Schema) -> bool:
        return not self.child.evaluate(row, schema)

    def attributes(self) -> Tuple[str, ...]:
        return self.child.attributes()


def selectivity(predicate: Predicate, relation) -> float:
    """Fraction of rows of ``relation`` that satisfy ``predicate``.

    Used by the enforce-during-sampling strategy of §8.3 to reason about the
    extra rejection factor a predicate introduces.
    """
    if len(relation) == 0:
        return 0.0
    satisfied = sum(1 for row in relation if predicate.evaluate(row, relation.schema))
    return satisfied / len(relation)


__all__ = [
    "Predicate",
    "TruePredicate",
    "Comparison",
    "InSet",
    "Between",
    "And",
    "Or",
    "Not",
    "selectivity",
]
