"""In-memory relational engine substrate.

Provides relations, schemas, hash indexes, column statistics, selection
predicates, and the physical operators needed both by the sampling framework
(index lookups, degree statistics) and by the exact ``FullJoinUnion`` ground
truth (hash joins, set/disjoint union).
"""

from repro.relational.columnar import (
    ColumnStore,
    as_column_array,
    concat_column_arrays,
    tuple_key_array,
)
from repro.relational.delta import RelationDelta
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.operators import (
    difference,
    disjoint_union,
    hash_join,
    intersection,
    natural_join,
    projection,
    selection,
    set_union,
)
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
    selectivity,
)
from repro.relational.relation import Relation, Row
from repro.relational.schema import ATTRIBUTE_TYPES, Attribute, Schema
from repro.relational.statistics import (
    ColumnStatistics,
    EquiWidthHistogram,
    HistogramBucket,
    merge_statistics,
)

__all__ = [
    "Attribute",
    "Schema",
    "ATTRIBUTE_TYPES",
    "Relation",
    "RelationDelta",
    "Row",
    "HashIndex",
    "SortedIndex",
    "ColumnStore",
    "as_column_array",
    "concat_column_arrays",
    "tuple_key_array",
    "ColumnStatistics",
    "EquiWidthHistogram",
    "HistogramBucket",
    "merge_statistics",
    "Predicate",
    "TruePredicate",
    "Comparison",
    "InSet",
    "Between",
    "And",
    "Or",
    "Not",
    "selectivity",
    "hash_join",
    "natural_join",
    "selection",
    "projection",
    "set_union",
    "disjoint_union",
    "intersection",
    "difference",
]
