"""Relation schemas.

A :class:`Schema` is an ordered collection of named, typed attributes.  The
union-sampling framework assumes all joins in a union produce results with the
same output schema (after attribute standardization); :meth:`Schema.aligns_with`
implements that check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple


#: Logical attribute types supported by the in-memory engine.  Types are
#: advisory: they drive the synthetic data generator and validation, while the
#: physical representation is plain Python objects.
ATTRIBUTE_TYPES = ("int", "float", "str", "date", "bool")


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Attributes
    ----------
    name:
        Attribute name.  Join attributes are assumed to be standardized to the
        same name across relations (paper §2).
    dtype:
        One of :data:`ATTRIBUTE_TYPES`.
    """

    name: str
    dtype: str = "int"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if self.dtype not in ATTRIBUTE_TYPES:
            raise ValueError(
                f"unknown dtype {self.dtype!r}; expected one of {ATTRIBUTE_TYPES}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.dtype}"


class Schema:
    """An ordered, duplicate-free list of :class:`Attribute` objects."""

    __slots__ = ("_attributes", "_positions")

    def __init__(self, attributes: Iterable[Attribute | str]) -> None:
        attrs: list[Attribute] = []
        for a in attributes:
            if isinstance(a, str):
                attrs.append(Attribute(a))
            elif isinstance(a, Attribute):
                attrs.append(a)
            else:
                raise TypeError(f"expected Attribute or str, got {type(a).__name__}")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate attribute names in schema: {dupes}")
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._positions = {a.name: i for i, a in enumerate(self._attributes)}

    # ------------------------------------------------------------------ basics
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(a) for a in self._attributes)
        return f"Schema({inner})"

    # ----------------------------------------------------------------- lookups
    def position(self, name: str) -> int:
        """Index of attribute ``name`` within a row tuple."""
        try:
            return self._positions[name]
        except KeyError:
            raise KeyError(f"attribute {name!r} not in schema {self.names}") from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def positions(self, names: Sequence[str]) -> Tuple[int, ...]:
        """Indices of several attributes, in the requested order."""
        return tuple(self.position(n) for n in names)

    # ------------------------------------------------------------- derivations
    def project(self, names: Sequence[str]) -> "Schema":
        """New schema containing only ``names``, in the requested order."""
        return Schema([self.attribute(n) for n in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """New schema with attributes renamed according to ``mapping``."""
        return Schema(
            [Attribute(mapping.get(a.name, a.name), a.dtype) for a in self._attributes]
        )

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas; attribute names must stay unique."""
        return Schema(list(self._attributes) + list(other._attributes))

    def aligns_with(self, other: "Schema") -> bool:
        """True when both schemas have the same attribute names in the same order.

        This is the compatibility requirement for unioning join results
        (paper §2): joins may have different lengths and base relations, but
        the output schemas must match.
        """
        return self.names == other.names


__all__ = ["Attribute", "Schema", "ATTRIBUTE_TYPES"]
