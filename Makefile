PYTHONPATH := src

.PHONY: test lint bench bench-aqp bench-parallel bench-pipeline bench-resilience bench-reuse bench-server bench-overload bench-updates bench-full profile serve

test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

# Static-analysis gate (docs/static-analysis.md): ruff + scoped strict mypy
# when available (CI installs them; offline containers may not have them),
# then the project's own invariant linter — always, it has no dependencies
# beyond the stdlib.  LINT_REPORT.json is the machine-readable artifact CI
# uploads.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi
	PYTHONPATH=$(PYTHONPATH) python -m repro.lint src tests --report LINT_REPORT.json

# Batched-engine micro-benchmark: writes BENCH_batch_engine.json at the root.
bench:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_batch_engine.py

# Columnar pipeline benchmark (block vs boxed end-to-end aggregate, dtype
# audit, --workers 2 bit-identity): writes BENCH_pipeline.json at the root.
bench-pipeline:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_pipeline.py

# cProfile of the aggregate hot path; top-25 cumulative saved under
# benchmarks/profiles/ (see docs/performance.md).
profile:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/profile_aggregate.py

# AQP benchmark (auto-planned vs hand-picked backends): writes BENCH_aqp.json.
bench-aqp:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_aqp.py

# Parallel sampling service benchmark (worker scaling + bit-identical merge
# vs the sequential reference): writes BENCH_parallel.json at the root.
bench-parallel:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_parallel.py

# Shard-supervision benchmark (fault-free overhead budget + chaos recovery):
# writes BENCH_resilience.json (see docs/resilience.md).
bench-resilience:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_resilience.py

# Incremental-update benchmark (delta maintenance vs full rebuild under an
# RF1/RF2 refresh stream): writes BENCH_updates.json at the root.
bench-updates:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_updates.py

# Server load benchmark (p50/p99 latency + qps at 1/4/16 concurrent clients,
# bit-identical-to-sequential hard gate): writes BENCH_server.json at the
# root (see docs/server.md).
bench-server:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_server.py

# Overload robustness benchmark (fault-free overhead budget, 5x offered-load
# shedding with structured Retry-After + bit-identical replays, transport
# chaos drain-to-zero): writes BENCH_overload.json (see docs/overload.md).
bench-overload:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_overload.py

# Cross-query sample-cache benchmark (repeated-with-variation aggregates,
# cached vs cold, 5x speedup + cold-purity hard gates): writes
# BENCH_reuse.json at the root (see docs/cache.md).
bench-reuse:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_reuse_cache.py

# Run the sampling server on the default port (see docs/server.md).
serve:
	PYTHONPATH=$(PYTHONPATH) python -m repro serve

# Full pytest-benchmark harness (paper figures + micro benchmarks).
bench-full:
	PYTHONPATH=$(PYTHONPATH) python -m pytest benchmarks/ --benchmark-only -q
