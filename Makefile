PYTHONPATH := src

.PHONY: test bench bench-full

test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

# Batched-engine micro-benchmark: writes BENCH_batch_engine.json at the root.
bench:
	PYTHONPATH=$(PYTHONPATH) python scripts/bench_batch_engine.py

# Full pytest-benchmark harness (paper figures + micro benchmarks).
bench-full:
	PYTHONPATH=$(PYTHONPATH) python -m pytest benchmarks/ --benchmark-only -q
