"""Quickstart: uniform sampling from the set union of two joins.

Builds two tiny overlapping chain joins, estimates the union parameters three
ways (exact, histogram-based, random-walk), draws a uniform sample from the
set union with Algorithm 1, and verifies empirically that every tuple of the
union is sampled with probability ~ 1/|U|.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    FullJoinUnionEstimator,
    HistogramUnionEstimator,
    JoinCondition,
    JoinQuery,
    OutputAttribute,
    RandomWalkUnionEstimator,
    Relation,
    SetUnionSampler,
    exact_union_size,
)


def build_queries() -> list[JoinQuery]:
    """Two chain joins R ⋈ S with overlapping results (same output schema)."""
    orders_west = Relation(
        "orders", ["order_id", "customer_id"],
        [(1, 10), (2, 10), (3, 20), (4, 30)],
    )
    customers_west = Relation(
        "customers", ["customer_id", "segment"],
        [(10, "retail"), (20, "retail"), (30, "b2b")],
    )
    orders_east = Relation(
        "orders", ["order_id", "customer_id"],
        [(1, 10), (2, 10), (5, 40), (6, 40)],
    )
    customers_east = Relation(
        "customers", ["customer_id", "segment"],
        [(10, "retail"), (40, "b2b")],
    )

    def make(name: str, orders: Relation, customers: Relation) -> JoinQuery:
        return JoinQuery(
            name,
            [orders, customers],
            [JoinCondition("orders", "customer_id", "customers", "customer_id")],
            [
                OutputAttribute.direct("orders", "order_id"),
                OutputAttribute.direct("orders", "customer_id"),
                OutputAttribute.direct("customers", "segment"),
            ],
        )

    return [make("J_west", orders_west, customers_west),
            make("J_east", orders_east, customers_east)]


def main() -> None:
    queries = build_queries()

    print("=== warm-up: estimating union parameters three ways ===")
    exact = FullJoinUnionEstimator(queries).estimate()
    histogram = HistogramUnionEstimator(queries, join_size_method="eo").estimate()
    random_walk = RandomWalkUnionEstimator(queries, walks_per_join=500, seed=1).estimate()
    print(f"exact       |U| = {exact.union_size:.0f}, join sizes = {exact.join_sizes}")
    print(f"histogram   |U| ≈ {histogram.union_size:.1f} (upper-bounded overlaps)")
    print(f"random-walk |U| ≈ {random_walk.union_size:.1f}")
    assert exact.union_size == exact_union_size(queries)

    print("\n=== Algorithm 1: sampling the set union ===")
    sampler = SetUnionSampler(queries, exact, seed=7, mode="strict")
    result = sampler.sample(5000)
    print(f"drew {len(result)} samples; per-join draws = {result.stats.draws_per_join}")

    counts = Counter(result.values())
    union_size = int(exact.union_size)
    print(f"\nempirical frequency of each of the {union_size} union tuples "
          f"(uniform would be {1 / union_size:.3f}):")
    for value, count in sorted(counts.items()):
        print(f"  {value}: {count / len(result):.3f}")


if __name__ == "__main__":
    main()
