"""Sampling the union of five regional TPC-H joins (the paper's UQ1 workload).

Reproduces the end-to-end scenario from the paper's introduction: a data
scientist needs an i.i.d. sample of customer/order/lineitem tuples that are
spread over several regional databases, each exposed as a chain join.  The
script:

1. generates a small TPC-H instance and derives the UQ1 workload
   (five chain joins with a configurable overlap scale),
2. estimates join, overlap, and union sizes with the histogram-based and the
   random-walk warm-up and compares them against the exact FullJoinUnion
   baseline,
3. samples the set union with Algorithm 1 under the three instantiations the
   paper evaluates (histogram+EW, histogram+EO, random-walk+EW) and reports
   runtime and rejection statistics.

Run:  python examples/tpch_union_sampling.py
"""

from __future__ import annotations

import time

from repro import (
    FullJoinUnionEstimator,
    HistogramUnionEstimator,
    RandomWalkUnionEstimator,
    SetUnionSampler,
    build_uq1,
)
from repro.analysis import mean_ratio_error

SCALE_FACTOR = 0.001
OVERLAP_SCALE = 0.3
SAMPLES = 300


def main() -> None:
    print(f"building UQ1 (scale={SCALE_FACTOR}, overlap scale={OVERLAP_SCALE}) ...")
    workload = build_uq1(scale_factor=SCALE_FACTOR, overlap_scale=OVERLAP_SCALE, seed=11)
    for query in workload.queries:
        sizes = {name: len(rel) for name, rel in query.relations.items()}
        print(f"  {query.name}: {query.join_type.value} join over {sizes}")

    print("\n=== warm-up estimators vs exact (FullJoinUnion) ===")
    started = time.perf_counter()
    exact = FullJoinUnionEstimator(workload.queries).estimate()
    exact_seconds = time.perf_counter() - started

    started = time.perf_counter()
    histogram = HistogramUnionEstimator(workload.queries, join_size_method="eo").estimate()
    histogram_seconds = time.perf_counter() - started

    started = time.perf_counter()
    random_walk = RandomWalkUnionEstimator(
        workload.queries, walks_per_join=500, seed=11
    ).estimate()
    walk_seconds = time.perf_counter() - started

    print(f"exact        |U| = {exact.union_size:9.0f}   ({exact_seconds:6.2f}s, full joins)")
    print(
        f"histogram+EO |U| ≈ {histogram.union_size:9.1f}   ({histogram_seconds:6.2f}s)"
        f"   mean |J|/|U| error = {mean_ratio_error(histogram, exact):.3f}"
    )
    print(
        f"random-walk  |U| ≈ {random_walk.union_size:9.1f}   ({walk_seconds:6.2f}s)"
        f"   mean |J|/|U| error = {mean_ratio_error(random_walk, exact):.3f}"
    )

    print(f"\n=== Algorithm 1: sampling {SAMPLES} tuples from the set union ===")
    instantiations = [
        ("histogram+EW", HistogramUnionEstimator(workload.queries, join_size_method="ew"), "ew"),
        ("histogram+EO", HistogramUnionEstimator(workload.queries, join_size_method="eo"), "eo"),
        ("random-walk+EW", RandomWalkUnionEstimator(workload.queries, walks_per_join=500, seed=11), "ew"),
    ]
    for label, estimator, weights in instantiations:
        started = time.perf_counter()
        sampler = SetUnionSampler(workload.queries, estimator, join_weights=weights, seed=17)
        result = sampler.sample(SAMPLES)
        elapsed = time.perf_counter() - started
        stats = result.stats
        print(
            f"  {label:<15} {elapsed:6.2f}s  "
            f"duplicate rejections={stats.rejected_duplicate:4d}  "
            f"join-sampler rejections={stats.join_sampler_rejections:5d}  "
            f"sources={result.sources()}"
        )

    print("\nsample preview (first 5 tuples):")
    for value in result.values()[:5]:
        print(f"  {value}")


if __name__ == "__main__":
    main()
