"""Decentralized estimation: bounding a union of heterogeneous joins from
histograms only (the data-market scenario, paper §4/§5/§8).

UQ3 unions one acyclic join and two chain joins whose relations have different
schemas (vertical fragments of `customer`, a denormalized customer–supplier
view).  When the underlying data cannot be accessed — only per-column
statistics are available, as in a data market — the histogram-based method:

1. searches a *standard template* (an ordering of the output attributes that
   keeps co-located attributes adjacent, §8.1),
2. rewrites every join into a base chain of two-attribute split relations
   (fake joins mark pairs that need no estimation, §5.2),
3. bounds every overlap with the degree recurrence of Theorem 4, and
4. assembles k-overlaps, cover sizes, and the union size (Theorem 3 / Eq. 1).

The script prints the chosen template, the per-pair overlap bounds against the
exact overlaps, and the resulting union-size bound — all without executing any
join other than for the ground-truth comparison.

Run:  python examples/data_market_histograms.py
"""

from __future__ import annotations

import itertools

from repro import (
    FullJoinUnionEstimator,
    HistogramUnionEstimator,
    build_uq3,
    exact_overlap_size,
    find_standard_template,
)

SCALE_FACTOR = 0.001
OVERLAP_SCALE = 0.4


def main() -> None:
    workload = build_uq3(scale_factor=SCALE_FACTOR, overlap_scale=OVERLAP_SCALE, seed=3)
    queries = workload.queries
    print("UQ3 joins:")
    for query in queries:
        print(f"  {query.name}: {query.join_type.value}, relations = {list(query.relation_names)}")

    template = find_standard_template(queries)
    print(f"\nstandard template (score {template.score:.1f}):")
    print("  " + " -> ".join(template.attributes))

    estimator = HistogramUnionEstimator(queries, join_size_method="ew", template=template)
    exact = FullJoinUnionEstimator(queries)

    print("\noverlap bounds from histograms vs exact overlaps:")
    for size in (2, 3):
        for combo in itertools.combinations(queries, size):
            names = "+".join(q.name.split("_")[-1] for q in combo)
            bound = estimator.overlap(list(combo))
            truth = exact_overlap_size(list(combo))
            print(f"  O({names:<8}) ≤ {bound:10.1f}   (exact {truth})")

    params = estimator.estimate()
    truth = exact.estimate()
    print("\nunion-size estimate assembled from the bounds (Theorem 3 + Eq. 1):")
    print(f"  histogram-based |U| ≈ {params.union_size:10.1f}")
    print(f"  exact           |U| = {truth.union_size:10.0f}")
    print(f"  disjoint union  Σ|J| = {truth.disjoint_union_size():9.0f}")

    print("\njoin-selection probabilities Algorithm 1 would use (|J'_j| / |U|):")
    for name, probability in params.selection_probabilities().items():
        print(f"  {name}: {probability:.3f}")


if __name__ == "__main__":
    main()
