"""Online aggregation: approximate answers that sharpen as you pay for them.

Builds the UQ1 TPC-H workload, then

1. runs an auto-planned SUM over one chain join, watching the confidence
   interval shrink batch by batch until the 2% relative-error target is met;
2. compares the approximate answer (and its interval) against the exact
   executor result;
3. aggregates per market segment (GROUP BY) over the same join;
4. mutates the orders relation mid-flight and shows the aggregator detect
   the new epoch and restart its accumulator;
5. estimates a SUM over the whole 5-join *union* under set semantics.

Run:  PYTHONPATH=src python examples/online_aggregation.py
"""

from __future__ import annotations

import math

from repro import (
    AggregateSpec,
    OnlineAggregator,
    build_uq1,
    exact_aggregate,
    execute_join,
)


def main() -> None:
    workload = build_uq1(scale_factor=0.001, overlap_scale=0.3, seed=7)
    query = workload.queries[0]

    # ----------------------------------------------------- 1. watch it sharpen
    spec = AggregateSpec("sum", attribute="totalprice")
    aggregator = OnlineAggregator(query, spec, method="auto", seed=7)
    print(f"query {query.name}: {spec.describe()}  "
          f"(planner chose backend={aggregator.backend})")
    for _ in range(6):
        estimate = aggregator.step(256).overall
        print(f"  after {estimate.attempts:5d} attempts: "
              f"{estimate.estimate:14.1f} ± {estimate.half_width:12.1f} "
              f"(rel {estimate.relative_half_width:.4f})")
        if estimate.relative_half_width <= 0.02:
            break

    # ------------------------------------------------------- 2. vs. the truth
    truth = exact_aggregate(execute_join(query), spec, query.output_schema)[()]
    estimate = aggregator.estimate().overall
    print(f"exact executor answer : {truth:14.1f}")
    print(f"interval covers truth : {estimate.covers(truth)}")

    # ------------------------------------------------------------ 3. GROUP BY
    grouped = AggregateSpec("avg", attribute="totalprice", group_by="mktsegment")
    report = OnlineAggregator(query, grouped, method="auto", seed=11).until(
        rel_error=0.05, confidence=0.95
    )
    print(f"\n{grouped.describe()}:")
    for group in report.groups():
        g = report.estimates[group]
        print(f"  {group[0]:<12} {g.estimate:10.1f}  "
              f"[{g.ci_low:10.1f}, {g.ci_high:10.1f}]")

    # ------------------------------------------- 4. mutations restart cleanly
    counter = OnlineAggregator(query, AggregateSpec("count"), method="auto", seed=13)
    before = counter.step(512).overall
    orders = query.relation("orders")
    removed = orders.delete_rows(range(0, len(orders) // 10))
    after = counter.step(512).overall
    print(f"\nCOUNT(*) before deleting {removed} orders: {before.estimate:10.1f}")
    print(f"COUNT(*) after  (epoch restarts: {counter.epochs_restarted}): "
          f"{after.estimate:10.1f}")

    # ----------------------------------------------------- 5. the whole union
    union_spec = AggregateSpec("sum", attribute="totalprice")
    union_agg = OnlineAggregator(list(workload.queries), union_spec, seed=17)
    report = union_agg.until(rel_error=0.05)
    estimate = report.overall
    print(f"\nunion of {len(workload.queries)} joins, {union_spec.describe()} "
          f"(backend={union_agg.backend}):")
    print(f"  {estimate.estimate:14.1f} ± {estimate.half_width:12.1f} "
          f"from {estimate.accepted} samples")
    assert math.isfinite(estimate.estimate)


if __name__ == "__main__":
    main()
