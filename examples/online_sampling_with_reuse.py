"""Online union sampling with sample reuse and backtracking (Algorithm 2).

The random-walk warm-up is accurate but pays for its walks; Algorithm 2
recovers that cost by recycling the warm-up walks as sampling candidates and
by refining the join/overlap/union estimates on the fly, backtracking over the
already-accepted samples to keep them uniform under the refined parameters.

This example runs the online sampler on the heavily-overlapping UQ2 workload
with reuse enabled and disabled, and reports:

* total sampling time,
* how many samples came from the reuse pool,
* time per accepted sample in the reuse phase vs the regular phase (Fig. 6b),
* how often the backtracking step fired and how many samples it re-drew.

Run:  python examples/online_sampling_with_reuse.py
"""

from __future__ import annotations

import time

from repro import OnlineUnionSampler, build_uq2

SCALE_FACTOR = 0.001
SAMPLES = 400


def run(reuse: bool) -> None:
    workload = build_uq2(scale_factor=SCALE_FACTOR, seed=5)
    started = time.perf_counter()
    sampler = OnlineUnionSampler(
        workload.queries,
        seed=5,
        reuse=reuse,
        warmup="random-walk",
        walks_per_join=400,
        phi=150,
        gamma=0.9,
    )
    result = sampler.sample(SAMPLES)
    elapsed = time.perf_counter() - started
    stats = result.stats

    label = "with reuse" if reuse else "without reuse"
    print(f"\n--- online union sampling {label} ---")
    print(f"total time                 : {elapsed:.2f}s "
          f"(warm-up {stats.warmup_seconds:.2f}s)")
    print(f"accepted samples           : {stats.accepted} "
          f"({stats.reused_accepted} from the reuse pool)")
    print(f"time per accepted sample   : reuse phase {stats.time_per_accepted('reuse') * 1e3:.3f} ms, "
          f"regular phase {stats.time_per_accepted('regular') * 1e3:.3f} ms")
    print(f"duplicate rejections       : {stats.rejected_duplicate}, revisions: {stats.revisions}")
    print(f"backtracking               : {stats.backtrack_rounds} rounds, "
          f"{stats.backtrack_removed} samples re-drawn, "
          f"confidence level reached {sampler.confidence_level:.2f}")
    print(f"per-join accepted samples  : {result.sources()}")


def main() -> None:
    print(f"UQ2 (three predicate variants of the same join), N={SAMPLES}")
    run(reuse=True)
    run(reuse=False)


if __name__ == "__main__":
    main()
