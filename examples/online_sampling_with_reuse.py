"""Sample reuse, two generations: Algorithm 2 and the SampleBlock cache tier.

Part 1 — the paper's reuse (Algorithm 2).  The random-walk warm-up is
accurate but pays for its walks; Algorithm 2 recovers that cost by recycling
the warm-up walks as sampling candidates and by refining the
join/overlap/union estimates on the fly, backtracking over the
already-accepted samples to keep them uniform under the refined parameters.
This part runs the online sampler on the heavily-overlapping UQ2 workload
with reuse enabled and disabled.

Part 2 — cross-query reuse (the block pipeline).  Reuse does not stop at one
sampler's warm-up: the :class:`repro.cache.SampleCache` tier materializes the
``SampleBlock`` streams an online aggregation draws and lets *later* queries
over the same join shape re-consume them — a SUM, an AVG, a filtered SUM,
and a GROUP-BY all served from one shared draw stream, each still a valid
Horvitz–Thompson estimate with an honest confidence interval (see
``docs/cache.md``).  This part runs that repeated-with-variation workload
cold and cached and reports the cached/fresh split per query.

Run:  python examples/online_sampling_with_reuse.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro import (
    AggregateSpec,
    OnlineAggregator,
    OnlineUnionSampler,
    SampleCache,
    build_uq1,
    build_uq2,
)


def run_algorithm2(reuse: bool, scale_factor: float, samples: int, walks: int) -> None:
    workload = build_uq2(scale_factor=scale_factor, seed=5)
    started = time.perf_counter()
    sampler = OnlineUnionSampler(
        workload.queries,
        seed=5,
        reuse=reuse,
        warmup="random-walk",
        walks_per_join=walks,
        phi=150,
        gamma=0.9,
    )
    result = sampler.sample(samples)
    elapsed = time.perf_counter() - started
    stats = result.stats

    label = "with reuse" if reuse else "without reuse"
    print(f"\n--- online union sampling {label} ---")
    print(f"total time                 : {elapsed:.2f}s "
          f"(warm-up {stats.warmup_seconds:.2f}s)")
    print(f"accepted samples           : {stats.accepted} "
          f"({stats.reused_accepted} from the reuse pool)")
    print(f"time per accepted sample   : reuse phase "
          f"{stats.time_per_accepted('reuse') * 1e3:.3f} ms, "
          f"regular phase {stats.time_per_accepted('regular') * 1e3:.3f} ms")
    print(f"duplicate rejections       : {stats.rejected_duplicate}, "
          f"revisions: {stats.revisions}")
    print(f"backtracking               : {stats.backtrack_rounds} rounds, "
          f"{stats.backtrack_removed} samples re-drawn, "
          f"confidence level reached {sampler.confidence_level:.2f}")
    print(f"per-join accepted samples  : {result.sources()}")


def run_cache_tier(scale_factor: float, rel_error: float) -> None:
    """A repeated-with-variation workload over one join, cold then cached."""
    workload = build_uq1(scale_factor=scale_factor, seed=7)
    query = workload.queries[0]
    expensive = AggregateSpec(
        "sum", attribute="totalprice",
        where=lambda row: row["totalprice"] > 100_000.0,
    )
    variations = [
        ("SUM(totalprice)", AggregateSpec("sum", attribute="totalprice")),
        ("AVG(totalprice)", AggregateSpec("avg", attribute="totalprice")),
        ("SUM(totalprice) WHERE >100k", expensive),
        ("SUM(totalprice) GROUP BY mktsegment",
         AggregateSpec("sum", attribute="totalprice", group_by="mktsegment")),
    ]

    print("\n--- cross-query reuse through the SampleBlock cache tier ---")
    cache = SampleCache()
    for mode, shared in (("cold", None), ("cached", cache)):
        total = 0.0
        lines = []
        for i, (label, spec) in enumerate(variations):
            started = time.perf_counter()
            aggregator = OnlineAggregator(
                query, spec, method="exact-weight", seed=100 + i, cache=shared,
            )
            report = aggregator.until(rel_error)
            elapsed = time.perf_counter() - started
            total += elapsed
            overall = next(iter(report.estimates.values()))
            lines.append(
                f"  {label:<36} {elapsed * 1e3:8.2f} ms  "
                f"cached/fresh {aggregator.cached_samples}/"
                f"{aggregator.fresh_samples:<6} "
                f"first estimate {overall.estimate:.1f} "
                f"(rel ±{overall.relative_half_width:.3f})"
            )
        print(f"{mode} run of the 4-query variation workload: {total * 1e3:.2f} ms")
        for line in lines:
            print(line)
    stats = cache.stats_dict()
    print(f"cache after the run: {stats['entries']} entries, "
          f"{stats['blocks']} blocks, {stats['samples']} cached samples, "
          f"{stats['bytes']} bytes")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    args = parser.parse_args(argv)
    scale = 0.0005 if args.quick else 0.001
    samples = 80 if args.quick else 400
    walks = 100 if args.quick else 400

    print(f"UQ2 (three predicate variants of the same join), N={samples}")
    run_algorithm2(True, scale, samples, walks)
    run_algorithm2(False, scale, samples, walks)
    run_cache_tier(scale, rel_error=0.2 if args.quick else 0.1)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
