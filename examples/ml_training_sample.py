"""Why uniform union samples matter: estimating statistics for model training.

The paper's motivation (§1) is training models on data spread across several
joins: learning theory only needs an i.i.d. sample of the union, but a naive
union of per-join samples is biased toward tuples that appear in many joins.

This example quantifies that bias on the UQ1 workload.  The "label" is a
simple derived quantity (the order's total price); we compare three ways of
building a training sample of N tuples and measure the error of the sample
mean against the true mean over the exact set union:

* ``naive``       — sample each join uniformly and concatenate (the strawman
                     from Example 2 of the paper; overlap tuples are
                     over-represented),
* ``set-union``   — Algorithm 1 with exact parameters (uniform over the union),
* ``online``      — Algorithm 2 with random-walk warm-up and sample reuse.

Run:  python examples/ml_training_sample.py
"""

from __future__ import annotations

import statistics

from repro import (
    FullJoinUnionEstimator,
    JoinSampler,
    OnlineUnionSampler,
    SetUnionSampler,
    build_uq1,
)

SCALE_FACTOR = 0.001
OVERLAP_SCALE = 0.6  # heavy overlap makes the naive strategy visibly biased
SAMPLES = 600
TOTALPRICE_POSITION = 7  # position of orders.totalprice in the output schema


def true_mean(estimator: FullJoinUnionEstimator) -> float:
    union = set()
    for query in estimator.queries:
        union |= estimator.result_set(query.name)
    return statistics.fmean(value[TOTALPRICE_POSITION] for value in union)


def naive_union_sample(queries, per_join: int, seed: int) -> list:
    """Uniform samples from each join, concatenated (no uniformity guarantee)."""
    values = []
    for offset, query in enumerate(queries):
        sampler = JoinSampler(query, weights="ew", seed=seed + offset)
        values.extend(draw.value for draw in sampler.sample_many(per_join))
    return values


def main() -> None:
    workload = build_uq1(scale_factor=SCALE_FACTOR, overlap_scale=OVERLAP_SCALE, seed=29)
    queries = workload.queries
    exact = FullJoinUnionEstimator(queries)
    parameters = exact.estimate()
    target = true_mean(exact)
    print(f"UQ1 with overlap scale {OVERLAP_SCALE}: |U| = {parameters.union_size:.0f}, "
          f"Σ|J| = {parameters.disjoint_union_size():.0f}")
    print(f"true mean(totalprice) over the set union = {target:,.2f}\n")

    per_join = SAMPLES // len(queries)
    strategies = {}

    naive_values = naive_union_sample(queries, per_join, seed=31)
    strategies["naive per-join sampling"] = [v[TOTALPRICE_POSITION] for v in naive_values]

    set_union = SetUnionSampler(queries, parameters, seed=37, mode="strict").sample(SAMPLES)
    strategies["set-union sampling (Alg. 1)"] = [
        v[TOTALPRICE_POSITION] for v in set_union.values()
    ]

    online = OnlineUnionSampler(queries, seed=41, walks_per_join=400).sample(SAMPLES)
    strategies["online sampling (Alg. 2)"] = [
        v[TOTALPRICE_POSITION] for v in online.values()
    ]

    print(f"{'strategy':<30} {'sample mean':>14} {'relative error':>15}")
    for label, values in strategies.items():
        mean = statistics.fmean(values)
        error = abs(mean - target) / target
        print(f"{label:<30} {mean:14,.2f} {error:15.3%}")

    print("\nNote: the naive strategy over-weights tuples shared by several joins, so its")
    print("error does not vanish with more samples; the union samplers are unbiased.")


if __name__ == "__main__":
    main()
