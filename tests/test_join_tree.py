"""Tests for repro.joins.join_tree."""

import pytest

from repro.joins.join_tree import build_join_tree
from repro.joins.query import JoinType


class TestChainTree:
    def test_chain_is_a_path_rooted_at_first_relation(self, chain_query):
        tree = build_join_tree(chain_query)
        assert tree.root.relation == "R"
        assert tree.is_path
        assert tree.chain_relations() == ["R", "S", "T"]
        assert tree.residual_conditions == ()

    def test_edge_attributes(self, chain_query):
        tree = build_join_tree(chain_query)
        s_node = tree.node_for("S")
        assert s_node.parent_attributes == ("b",)
        assert s_node.child_attributes == ("b",)

    def test_alternate_root(self, chain_query):
        tree = build_join_tree(chain_query, root="T")
        assert tree.root.relation == "T"
        assert tree.chain_relations() == ["T", "S", "R"]

    def test_unknown_root_raises(self, chain_query):
        with pytest.raises(KeyError):
            build_join_tree(chain_query, root="nope")

    def test_depth_and_order(self, chain_query):
        tree = build_join_tree(chain_query)
        assert tree.depth() == 3
        assert tree.relation_order() == ["R", "S", "T"]


class TestAcyclicTree:
    def test_star_tree_structure(self, acyclic_query):
        tree = build_join_tree(acyclic_query)
        assert tree.root.relation == "C"
        assert {c.relation for c in tree.root.children} == {"D", "E"}
        assert not tree.is_path
        assert tree.residual_conditions == ()

    def test_chain_relations_raises_for_non_path(self, acyclic_query):
        tree = build_join_tree(acyclic_query)
        with pytest.raises(ValueError):
            tree.chain_relations()

    def test_node_for_missing_relation(self, acyclic_query):
        tree = build_join_tree(acyclic_query)
        with pytest.raises(KeyError):
            tree.node_for("nope")


class TestCyclicTree:
    def test_cycle_produces_residual_conditions(self, cyclic_query):
        assert cyclic_query.join_type is JoinType.CYCLIC
        tree = build_join_tree(cyclic_query)
        # One edge of the triangle is broken and becomes a residual condition.
        assert len(tree.residual_conditions) == 1
        assert tree.has_residuals
        assert len(tree.nodes()) == 3

    def test_residual_satisfied_matches_direct_evaluation(self, cyclic_query):
        tree = build_join_tree(cyclic_query)
        # Exhaustively compare residual_satisfied against evaluating the
        # residual conditions directly, over every possible full assignment.
        conditions = tree.residual_conditions
        sizes = {name: len(cyclic_query.relation(name)) for name in cyclic_query.relation_names}
        checked_true = checked_false = 0
        for r_pos in range(sizes["R"]):
            for s_pos in range(sizes["S"]):
                for t_pos in range(sizes["T"]):
                    assignment = {"R": r_pos, "S": s_pos, "T": t_pos}
                    expected = all(
                        cyclic_query.relation(c.left_relation).value(
                            assignment[c.left_relation], c.left_attribute
                        )
                        == cyclic_query.relation(c.right_relation).value(
                            assignment[c.right_relation], c.right_attribute
                        )
                        for c in conditions
                    )
                    assert tree.residual_satisfied(assignment) is expected
                    checked_true += expected
                    checked_false += not expected
        # Both outcomes must actually occur for the test to be meaningful.
        assert checked_true > 0 and checked_false > 0


class TestTraversals:
    def test_walk_preorder_and_postorder(self, acyclic_query):
        tree = build_join_tree(acyclic_query)
        pre = [n.relation for n in tree.root.walk()]
        post = [n.relation for n in tree.root.post_order()]
        assert pre[0] == "C"
        assert post[-1] == "C"
        assert sorted(pre) == sorted(post) == ["C", "D", "E"]
