"""Tests for repro.sampling.join_sampler: uniform single-join sampling."""

import pytest

from repro.joins.executor import execute_join, join_result_set
from repro.joins.query import JoinQuery
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation
from repro.sampling.join_sampler import JoinSampler

from tests.stat_helpers import assert_uniform


class TestBasicSampling:
    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_samples_are_members_of_the_join(self, chain_query, weights):
        sampler = JoinSampler(chain_query, weights=weights, seed=1)
        results = join_result_set(chain_query)
        for draw in sampler.sample_many(50):
            assert draw.value in results

    def test_sample_many_count(self, chain_query):
        sampler = JoinSampler(chain_query, seed=2)
        assert len(sampler.sample_many(10)) == 10
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    def test_assignment_consistent_with_value(self, chain_query):
        sampler = JoinSampler(chain_query, seed=3)
        draw = sampler.sample()
        assert chain_query.project_assignment(draw.assignment) == draw.value

    def test_empty_join_raises(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[(1, 99)], s_rows=[(10, 100)])
        sampler = JoinSampler(query, weights="ew", seed=0)
        with pytest.raises(RuntimeError):
            sampler.sample(max_attempts=50)

    def test_size_bound_matches_weight_function(self, chain_query):
        ew = JoinSampler(chain_query, weights="ew", seed=0)
        eo = JoinSampler(chain_query, weights="eo", seed=0)
        assert ew.size_bound == 6.0
        assert ew.exact_size() == 6.0
        assert eo.exact_size() is None
        assert eo.size_bound >= ew.size_bound


class TestUniformity:
    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_chain_join_uniformity(self, chain_query, weights):
        sampler = JoinSampler(chain_query, weights=weights, seed=7)
        population = sorted(join_result_set(chain_query))
        samples = [sampler.sample().value for _ in range(1200)]
        assert_uniform(samples, population)

    def test_acyclic_join_uniformity(self, acyclic_query):
        sampler = JoinSampler(acyclic_query, weights="eo", seed=11)
        population = sorted(join_result_set(acyclic_query))
        samples = [sampler.sample().value for _ in range(1000)]
        assert_uniform(samples, population)

    def test_cyclic_join_uniformity(self, cyclic_query):
        sampler = JoinSampler(cyclic_query, weights="ew", seed=13)
        population = sorted(join_result_set(cyclic_query))
        samples = [sampler.sample().value for _ in range(600)]
        assert_uniform(samples, population)

    def test_skewed_join_uniformity_with_eo(self):
        """A value with much higher degree must not be oversampled under EO."""
        from tests.conftest import make_chain_query

        r_rows = [(i, 10) for i in range(6)] + [(100, 20)]
        s_rows = [(10, 1000)] + [(20, 2000 + i) for i in range(8)]
        query = make_chain_query("skewed", r_rows=r_rows, s_rows=s_rows)
        sampler = JoinSampler(query, weights="eo", seed=17)
        population = sorted(join_result_set(query))
        samples = [sampler.sample().value for _ in range(1400)]
        assert_uniform(samples, population)


class TestRejectionAccounting:
    def test_exact_weights_never_reject_on_weights(self, chain_query):
        sampler = JoinSampler(chain_query, weights="ew", seed=5)
        sampler.sample_many(100)
        assert sampler.stats.rejected_weight == 0
        assert sampler.stats.acceptance_rate == 1.0

    def test_eo_acceptance_rate_close_to_size_over_bound(self, chain_query):
        sampler = JoinSampler(chain_query, weights="eo", seed=5)
        sampler.sample_many(400)
        expected = 6.0 / sampler.size_bound
        assert sampler.stats.acceptance_rate == pytest.approx(expected, rel=0.25)

    def test_cyclic_rejections_counted_as_residual(self, cyclic_query):
        sampler = JoinSampler(cyclic_query, weights="ew", seed=5)
        sampler.sample_many(100)
        assert sampler.stats.rejected_residual > 0


class TestPredicateEnforcement:
    def _query(self, push_down: bool) -> JoinQuery:
        r = Relation("R", ["a", "b"], [(1, 10), (2, 10), (3, 10)])
        s = Relation("S", ["b", "c"], [(10, 100), (10, 200)])
        return JoinQuery(
            "pred",
            [r, s],
            [JoinCondition("R", "b", "S", "b")],
            [OutputAttribute.direct("R", "a"), OutputAttribute.direct("S", "c")],
            predicates={"R": Comparison("a", "<=", 2)},
            push_down_predicates=push_down,
        )

    def test_enforced_during_sampling_matches_pushed_down(self):
        enforced = self._query(push_down=False)
        pushed = self._query(push_down=True)
        expected = join_result_set(pushed)
        sampler = JoinSampler(enforced, weights="ew", seed=23, enforce_predicates=True)
        seen = {sampler.sample().value for _ in range(300)}
        assert seen == expected
        assert sampler.stats.rejected_predicate > 0

    def test_enforcement_disabled_samples_unfiltered_join(self):
        enforced = self._query(push_down=False)
        sampler = JoinSampler(enforced, weights="ew", seed=29, enforce_predicates=False)
        seen = {sampler.sample().value for _ in range(300)}
        assert (3, 100) in seen


class TestBatchEdgeCases:
    """count=0 / count=1 / exhausted-attempt budgets return cleanly."""

    def test_count_zero_returns_empty_without_consuming_state(self, chain_query):
        sampler = JoinSampler(chain_query, seed=5)
        state_before = sampler.rng.bit_generator.state
        assert sampler.sample_batch(0) == []
        assert sampler.sample_many(0) == []
        assert sampler.rng.bit_generator.state == state_before
        assert sampler.stats.attempts == 0

    def test_count_zero_leaves_buffer_intact(self, chain_query):
        sampler = JoinSampler(chain_query, seed=5)
        sampler.sample()  # fills the buffer with surplus accepted draws
        buffered = len(sampler._draw_buffer) + sum(
            len(b) for b in sampler._block_buffer
        )
        assert buffered > 0
        assert sampler.sample_batch(0) == []
        assert len(sampler._draw_buffer) + sum(
            len(b) for b in sampler._block_buffer
        ) == buffered

    def test_count_one(self, chain_query):
        sampler = JoinSampler(chain_query, seed=6)
        draws = sampler.sample_batch(1)
        assert len(draws) == 1

    def test_max_attempts_must_be_positive(self, chain_query):
        sampler = JoinSampler(chain_query, seed=7)
        with pytest.raises(ValueError, match="max_attempts"):
            sampler.sample_batch(1, max_attempts=0)
        with pytest.raises(ValueError, match="max_attempts"):
            sampler.sample_batch(1, max_attempts=-5)

    def test_exhaustion_raises_and_sampler_stays_usable(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[(1, 99)], s_rows=[(10, 100)])
        sampler = JoinSampler(query, weights="ew", seed=0)
        for _ in range(2):  # a second call must fail identically, not corrupt
            with pytest.raises(RuntimeError, match="failed to accept"):
                sampler.sample_batch(3, max_attempts=40)
        assert sampler.pop_buffered() == []

    def test_exhaustion_preserves_accepted_draws_in_buffer(self, chain_query, monkeypatch):
        sampler = JoinSampler(chain_query, seed=8)
        real_attempt = sampler._attempt_block
        calls = {"n": 0}

        def one_accept_then_dry(size):
            calls["n"] += 1
            if calls["n"] == 1:
                return real_attempt(size).split(1)[0]
            sampler.stats.attempts += size
            return None

        monkeypatch.setattr(sampler, "_attempt_block", one_accept_then_dry)
        with pytest.raises(RuntimeError, match="failed to accept"):
            sampler.sample_batch(5, max_attempts=100)
        # The accepted draw survived the failure and serves the next request.
        preserved = sampler.pop_buffered()
        assert len(preserved) == 1


class TestSplitAndParallelism:
    def test_split_shards_share_weight_function(self, chain_query):
        sampler = JoinSampler(chain_query, seed=11)
        shards = sampler.split(3)
        assert len(shards) == 3
        for shard in shards:
            assert shard.weight_function is sampler.weight_function
            assert shard.tree is sampler.tree
        with pytest.raises(ValueError):
            sampler.split(0)

    def test_split_shards_draw_distinct_sequences(self, chain_query):
        sampler = JoinSampler(chain_query, seed=11)
        a, b = sampler.split(2)
        draws_a = [d.value for d in a.sample_many(20)]
        draws_b = [d.value for d in b.sample_many(20)]
        assert draws_a != draws_b  # aliased streams would repeat verbatim

    def test_parallel_sample_batch_is_deterministic(self, chain_query):
        first = JoinSampler(chain_query, seed=13, parallelism=3)
        second = JoinSampler(chain_query, seed=13, parallelism=3)
        values = [d.value for d in first.sample_batch(30)]
        assert values == [d.value for d in second.sample_batch(30)]
        assert first.stats.accepted >= 30

    def test_parallel_draws_are_join_members(self, chain_query):
        results = join_result_set(chain_query)
        sampler = JoinSampler(chain_query, seed=13, parallelism=2)
        for draw in sampler.sample_batch(40):
            assert draw.value in results

    def test_parallel_batch_serves_parked_buffer_first(self, chain_query):
        sampler = JoinSampler(chain_query, seed=15, parallelism=2)
        parked = JoinSampler(chain_query, seed=16).sample_block(3)
        parked.attempts = 0
        sampler._block_buffer.append(parked)
        expected = parked.values(chain_query)
        draws = sampler.sample_batch(2)
        assert [d.value for d in draws] == expected[:2]
        # the third parked sample stays queued
        assert sum(len(b) for b in sampler._block_buffer) == 1
