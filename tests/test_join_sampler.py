"""Tests for repro.sampling.join_sampler: uniform single-join sampling."""

import pytest

from repro.joins.executor import execute_join, join_result_set
from repro.joins.query import JoinQuery
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation
from repro.sampling.join_sampler import JoinSampler

from tests.stat_helpers import assert_uniform


class TestBasicSampling:
    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_samples_are_members_of_the_join(self, chain_query, weights):
        sampler = JoinSampler(chain_query, weights=weights, seed=1)
        results = join_result_set(chain_query)
        for draw in sampler.sample_many(50):
            assert draw.value in results

    def test_sample_many_count(self, chain_query):
        sampler = JoinSampler(chain_query, seed=2)
        assert len(sampler.sample_many(10)) == 10
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    def test_assignment_consistent_with_value(self, chain_query):
        sampler = JoinSampler(chain_query, seed=3)
        draw = sampler.sample()
        assert chain_query.project_assignment(draw.assignment) == draw.value

    def test_empty_join_raises(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[(1, 99)], s_rows=[(10, 100)])
        sampler = JoinSampler(query, weights="ew", seed=0)
        with pytest.raises(RuntimeError):
            sampler.sample(max_attempts=50)

    def test_size_bound_matches_weight_function(self, chain_query):
        ew = JoinSampler(chain_query, weights="ew", seed=0)
        eo = JoinSampler(chain_query, weights="eo", seed=0)
        assert ew.size_bound == 6.0
        assert ew.exact_size() == 6.0
        assert eo.exact_size() is None
        assert eo.size_bound >= ew.size_bound


class TestUniformity:
    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_chain_join_uniformity(self, chain_query, weights):
        sampler = JoinSampler(chain_query, weights=weights, seed=7)
        population = sorted(join_result_set(chain_query))
        samples = [sampler.sample().value for _ in range(1200)]
        assert_uniform(samples, population)

    def test_acyclic_join_uniformity(self, acyclic_query):
        sampler = JoinSampler(acyclic_query, weights="eo", seed=11)
        population = sorted(join_result_set(acyclic_query))
        samples = [sampler.sample().value for _ in range(1000)]
        assert_uniform(samples, population)

    def test_cyclic_join_uniformity(self, cyclic_query):
        sampler = JoinSampler(cyclic_query, weights="ew", seed=13)
        population = sorted(join_result_set(cyclic_query))
        samples = [sampler.sample().value for _ in range(600)]
        assert_uniform(samples, population)

    def test_skewed_join_uniformity_with_eo(self):
        """A value with much higher degree must not be oversampled under EO."""
        from tests.conftest import make_chain_query

        r_rows = [(i, 10) for i in range(6)] + [(100, 20)]
        s_rows = [(10, 1000)] + [(20, 2000 + i) for i in range(8)]
        query = make_chain_query("skewed", r_rows=r_rows, s_rows=s_rows)
        sampler = JoinSampler(query, weights="eo", seed=17)
        population = sorted(join_result_set(query))
        samples = [sampler.sample().value for _ in range(1400)]
        assert_uniform(samples, population)


class TestRejectionAccounting:
    def test_exact_weights_never_reject_on_weights(self, chain_query):
        sampler = JoinSampler(chain_query, weights="ew", seed=5)
        sampler.sample_many(100)
        assert sampler.stats.rejected_weight == 0
        assert sampler.stats.acceptance_rate == 1.0

    def test_eo_acceptance_rate_close_to_size_over_bound(self, chain_query):
        sampler = JoinSampler(chain_query, weights="eo", seed=5)
        sampler.sample_many(400)
        expected = 6.0 / sampler.size_bound
        assert sampler.stats.acceptance_rate == pytest.approx(expected, rel=0.25)

    def test_cyclic_rejections_counted_as_residual(self, cyclic_query):
        sampler = JoinSampler(cyclic_query, weights="ew", seed=5)
        sampler.sample_many(100)
        assert sampler.stats.rejected_residual > 0


class TestPredicateEnforcement:
    def _query(self, push_down: bool) -> JoinQuery:
        r = Relation("R", ["a", "b"], [(1, 10), (2, 10), (3, 10)])
        s = Relation("S", ["b", "c"], [(10, 100), (10, 200)])
        return JoinQuery(
            "pred",
            [r, s],
            [JoinCondition("R", "b", "S", "b")],
            [OutputAttribute.direct("R", "a"), OutputAttribute.direct("S", "c")],
            predicates={"R": Comparison("a", "<=", 2)},
            push_down_predicates=push_down,
        )

    def test_enforced_during_sampling_matches_pushed_down(self):
        enforced = self._query(push_down=False)
        pushed = self._query(push_down=True)
        expected = join_result_set(pushed)
        sampler = JoinSampler(enforced, weights="ew", seed=23, enforce_predicates=True)
        seen = {sampler.sample().value for _ in range(300)}
        assert seen == expected
        assert sampler.stats.rejected_predicate > 0

    def test_enforcement_disabled_samples_unfiltered_join(self):
        enforced = self._query(push_down=False)
        sampler = JoinSampler(enforced, weights="ew", seed=29, enforce_predicates=False)
        seen = {sampler.sample().value for _ in range(300)}
        assert (3, 100) in seen
