"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sample_defaults(self):
        args = build_parser().parse_args(["sample"])
        assert args.workload == "UQ1"
        assert args.sampler == "set-union"
        assert args.warmup == "histogram"

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_all_documented_figures_registered(self):
        expected = {
            "fig4a", "fig4b", "fig4c", "fig4d",
            "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h",
            "fig6a", "fig6b", "ablation-bernoulli", "ablation-template",
        }
        assert expected == set(FIGURES)


class TestCommands:
    common = ["--scale-factor", "0.0005", "--seed", "3"]

    def test_sample_set_union(self, capsys):
        code = main(
            ["sample", "--workload", "UQ2", "--samples", "30",
             "--sampler", "set-union", "--warmup", "histogram", *self.common]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "samples drawn      : 30" in out
        assert "per-join samples" in out

    def test_sample_online(self, capsys):
        code = main(["sample", "--workload", "UQ2", "--samples", "20",
                     "--sampler", "online", *self.common])
        assert code == 0
        assert "samples drawn      : 20" in capsys.readouterr().out

    @pytest.mark.parametrize("sampler", ["bernoulli", "disjoint"])
    def test_sample_other_algorithms(self, capsys, sampler):
        code = main(["sample", "--workload", "UQ2", "--samples", "15",
                     "--sampler", sampler, "--warmup", "exact", *self.common])
        assert code == 0
        assert "samples drawn      : 15" in capsys.readouterr().out

    def test_estimate(self, capsys):
        code = main(["estimate", "--workload", "UQ2", "--walks", "150", *self.common])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact" in out and "histogram+EO" in out and "random-walk" in out

    def test_figure(self, capsys):
        code = main(["figure", "fig5a", "--scale-factor", "0.0005",
                     "--walks", "100", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig5a" in out
        assert "random_walk_error" in out
