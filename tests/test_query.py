"""Tests for repro.joins.query and repro.joins.conditions."""

import pytest

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery, JoinType, check_union_compatible
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation


class TestJoinCondition:
    def test_basic_accessors(self):
        cond = JoinCondition("R", "b", "S", "b2")
        assert cond.relations() == ("R", "S")
        assert cond.touches("R") and not cond.touches("T")
        assert cond.attribute_for("S") == "b2"
        assert cond.other("R") == ("S", "b2")

    def test_reversed(self):
        cond = JoinCondition("R", "x", "S", "y").reversed()
        assert cond.left_relation == "S" and cond.right_attribute == "x"

    def test_rejects_same_relation_both_sides(self):
        with pytest.raises(ValueError):
            JoinCondition("R", "a", "R", "b")

    def test_attribute_for_unknown_relation(self):
        with pytest.raises(KeyError):
            JoinCondition("R", "a", "S", "b").attribute_for("T")

    def test_output_attribute_direct(self):
        out = OutputAttribute.direct("R", "a")
        assert out.name == "a" and out.relation == "R" and out.attribute == "a"


class TestJoinQueryValidation:
    def r(self):
        return Relation("R", ["a", "b"], [(1, 10)])

    def s(self):
        return Relation("S", ["b", "c"], [(10, 100)])

    def test_requires_name_and_relations(self):
        with pytest.raises(ValueError):
            JoinQuery("", [self.r()], [], [OutputAttribute.direct("R", "a")])
        with pytest.raises(ValueError):
            JoinQuery("q", [], [], [])

    def test_rejects_duplicate_relation_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            JoinQuery("q", [self.r(), self.r()], [], [OutputAttribute.direct("R", "a")])

    def test_rejects_condition_with_unknown_relation(self):
        with pytest.raises(ValueError, match="unknown relation"):
            JoinQuery(
                "q",
                [self.r(), self.s()],
                [JoinCondition("R", "b", "T", "b")],
                [OutputAttribute.direct("R", "a")],
            )

    def test_rejects_condition_with_unknown_attribute(self):
        with pytest.raises(ValueError, match="not in"):
            JoinQuery(
                "q",
                [self.r(), self.s()],
                [JoinCondition("R", "zzz", "S", "b")],
                [OutputAttribute.direct("R", "a")],
            )

    def test_rejects_missing_output_attributes(self):
        with pytest.raises(ValueError, match="no output attributes"):
            JoinQuery("q", [self.r()], [], [])

    def test_rejects_duplicate_output_names(self):
        with pytest.raises(ValueError, match="duplicate output"):
            JoinQuery(
                "q",
                [self.r()],
                [],
                [OutputAttribute.direct("R", "a"), OutputAttribute("a", "R", "b")],
            )

    def test_rejects_output_from_unknown_relation(self):
        with pytest.raises(ValueError, match="unknown relation"):
            JoinQuery("q", [self.r()], [], [OutputAttribute.direct("X", "a")])

    def test_rejects_multi_relation_query_without_conditions(self):
        with pytest.raises(ValueError, match="no join conditions"):
            JoinQuery("q", [self.r(), self.s()], [], [OutputAttribute.direct("R", "a")])

    def test_rejects_disconnected_join_graph(self):
        t = Relation("T", ["c", "d"], [(1, 2)])
        u = Relation("U", ["d", "e"], [(2, 3)])
        query = JoinQuery(
            "q",
            [self.r(), self.s(), t, u],
            [JoinCondition("R", "b", "S", "b"), JoinCondition("T", "d", "U", "d")],
            [OutputAttribute.direct("R", "a")],
        )
        with pytest.raises(ValueError, match="disconnected"):
            _ = query.join_type


class TestClassification:
    def test_single_relation_is_chain(self):
        query = JoinQuery(
            "q",
            [Relation("R", ["a"], [(1,)])],
            [],
            [OutputAttribute.direct("R", "a")],
        )
        assert query.join_type is JoinType.CHAIN

    def test_chain(self, chain_query):
        assert chain_query.join_type is JoinType.CHAIN
        assert chain_query.is_chain and not chain_query.is_cyclic

    def test_acyclic(self, acyclic_query):
        assert acyclic_query.join_type is JoinType.ACYCLIC

    def test_cyclic(self, cyclic_query):
        assert cyclic_query.join_type is JoinType.CYCLIC
        assert cyclic_query.is_cyclic


class TestPredicatesAndProjection:
    def test_push_down_filters_relation(self):
        r = Relation("R", ["a", "b"], [(1, 10), (2, 20)])
        s = Relation("S", ["b", "c"], [(10, 100), (20, 200)])
        query = JoinQuery(
            "q",
            [r, s],
            [JoinCondition("R", "b", "S", "b")],
            [OutputAttribute.direct("R", "a"), OutputAttribute.direct("S", "c")],
            predicates={"R": Comparison("a", "==", 1)},
        )
        assert len(query.relation("R")) == 1
        # The original relation object is untouched.
        assert len(r) == 2

    def test_no_push_down_keeps_rows(self):
        r = Relation("R", ["a", "b"], [(1, 10), (2, 20)])
        s = Relation("S", ["b", "c"], [(10, 100), (20, 200)])
        query = JoinQuery(
            "q",
            [r, s],
            [JoinCondition("R", "b", "S", "b")],
            [OutputAttribute.direct("R", "a"), OutputAttribute.direct("S", "c")],
            predicates={"R": Comparison("a", "==", 1)},
            push_down_predicates=False,
        )
        assert len(query.relation("R")) == 2

    def test_project_assignment(self, chain_query):
        value = chain_query.project_assignment({"R": 0, "S": 0, "T": 0})
        assert value == (1, 100, 7)

    def test_output_schema_and_sources(self, chain_query):
        assert chain_query.output_schema == ("a", "c", "d")
        assert chain_query.output_sources()["c"] == ("S", "c")


class TestUnionCompatibility:
    def test_aligns_with(self, union_pair):
        assert union_pair[0].aligns_with(union_pair[1])

    def test_check_union_compatible_passes(self, union_triple):
        check_union_compatible(union_triple)

    def test_check_union_compatible_rejects_schema_mismatch(self, union_pair, chain_query):
        with pytest.raises(ValueError, match="not union-compatible"):
            check_union_compatible([union_pair[0], chain_query])

    def test_check_union_compatible_rejects_duplicate_names(self, union_pair):
        with pytest.raises(ValueError, match="duplicate"):
            check_union_compatible([union_pair[0], union_pair[0]])

    def test_check_union_compatible_rejects_empty(self):
        with pytest.raises(ValueError):
            check_union_compatible([])
