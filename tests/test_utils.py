"""Tests for repro.utils (rng helpers and timers)."""

import time

import numpy as np
import pytest

from repro.utils.rng import bernoulli, ensure_rng, spawn_rngs, weighted_choice
from repro.utils.timer import PhaseTimer, Stopwatch


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_objects(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [tuple(c.integers(0, 10**9, size=3)) for c in children]
        assert len(set(draws)) == 4

    def test_from_generator(self):
        rng = np.random.default_rng(0)
        children = spawn_rngs(rng, 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = ensure_rng(0)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert counts["a"] > counts["b"] * 2

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_choice(ensure_rng(0), ["a"], [0.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_choice(ensure_rng(0), ["a", "b"], [1.0, -1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_choice(ensure_rng(0), ["a"], [1.0, 2.0])


class TestBernoulli:
    def test_extreme_probabilities(self):
        rng = ensure_rng(0)
        assert all(bernoulli(rng, 1.5) for _ in range(10))
        assert not any(bernoulli(rng, -0.5) for _ in range(10))

    def test_rate_roughly_matches(self):
        rng = ensure_rng(1)
        rate = sum(bernoulli(rng, 0.25) for _ in range(4000)) / 4000
        assert 0.2 < rate < 0.3


class TestTimers:
    def test_stopwatch_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_stopwatch_stop_before_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.add("x", 0.5)
        timer.add("y", 2.0)
        assert timer.get("x") == pytest.approx(1.5)
        assert timer.get("missing") == 0.0
        assert timer.total() == pytest.approx(3.5)

    def test_phase_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_phase_context_manager(self):
        timer = PhaseTimer()
        with timer.phase("sleepy"):
            time.sleep(0.01)
        assert timer.get("sleepy") >= 0.009

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        merged = a.merge(b)
        assert merged.get("x") == 3.0
        assert merged.get("y") == 3.0
        # originals untouched
        assert a.get("x") == 1.0


class TestShardSeedSequences:
    def test_children_are_deterministic_and_picklable(self):
        import pickle

        from repro.utils.rng import shard_seed_sequences

        first = shard_seed_sequences(42, 4)
        second = shard_seed_sequences(42, 4)
        for a, b in zip(first, second):
            assert a.entropy == b.entropy and a.spawn_key == b.spawn_key
        restored = pickle.loads(pickle.dumps(first))
        for a, b in zip(first, restored):
            draws_a = np.random.default_rng(a).integers(0, 2**60, size=4)
            draws_b = np.random.default_rng(b).integers(0, 2**60, size=4)
            assert list(draws_a) == list(draws_b)

    def test_children_are_pairwise_distinct(self):
        from repro.utils.rng import shard_seed_sequences

        streams = [
            tuple(np.random.default_rng(s).integers(0, 2**60, size=4))
            for s in shard_seed_sequences(0, 6)
        ]
        assert len(set(streams)) == 6

    def test_generator_and_seedsequence_roots(self):
        from repro.utils.rng import shard_seed_sequences

        assert len(shard_seed_sequences(np.random.default_rng(1), 3)) == 3
        assert len(shard_seed_sequences(np.random.SeedSequence(1), 3)) == 3
        with pytest.raises(ValueError):
            shard_seed_sequences(0, -1)


class TestAliasingContract:
    """Regression tests for the seed-aliasing bug class (see repro.utils.rng).

    Handing the same generator or int seed to two sibling samplers aliases
    their streams; every call site must derive sub-streams instead.
    """

    def _union(self):
        from repro.joins.conditions import JoinCondition, OutputAttribute
        from repro.joins.query import JoinQuery
        from repro.relational.relation import Relation

        def chain(name, offset):
            return JoinQuery(
                name,
                [
                    Relation("R", ["a", "b"], [(offset + i, i % 3) for i in range(9)]),
                    Relation("S", ["b", "c"], [(b, 10 + b) for b in range(3)]),
                ],
                [JoinCondition("R", "b", "S", "b")],
                [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
            )

        return [chain("J0", 0), chain("J1", 100)]

    def test_shared_int_seed_replays_identical_streams(self):
        # The documented hazard itself: same int seed => same stream.
        a = ensure_rng(123).integers(0, 2**60, size=8)
        b = ensure_rng(123).integers(0, 2**60, size=8)
        assert list(a) == list(b)

    def test_union_sampler_per_join_samplers_never_alias(self):
        from repro.core.online_sampler import OnlineUnionSampler

        sampler = OnlineUnionSampler(self._union(), seed=7, warmup="histogram")
        streams = [
            tuple(js.rng.integers(0, 2**60, size=8))
            for js in sampler.join_samplers.values()
        ]
        assert len(set(streams)) == len(streams)

    def test_online_sampler_warmup_does_not_alias_selection_stream(self):
        from repro.core.online_sampler import OnlineUnionSampler

        queries = self._union()
        # With the fix, the random-walk warm-up draws from a derived child
        # stream; two samplers with the same seed but different warm-ups must
        # still have pairwise-distinct join-sampler streams.
        with_walks = OnlineUnionSampler(queries, seed=11, walks_per_join=10)
        streams = [
            tuple(js.rng.integers(0, 2**60, size=8))
            for js in with_walks.join_samplers.values()
        ]
        selection = tuple(with_walks.rng.integers(0, 2**60, size=8))
        assert len(set(streams + [selection])) == len(streams) + 1

    def test_set_union_sampler_join_samplers_never_alias(self):
        from repro.core.union_sampler import SetUnionSampler
        from repro.estimation.histogram import HistogramUnionEstimator

        queries = self._union()
        estimator = HistogramUnionEstimator(queries, join_size_method="eo")
        sampler = SetUnionSampler(queries, estimator, seed=13)
        streams = [
            tuple(js.rng.integers(0, 2**60, size=8))
            for js in sampler.join_samplers.values()
        ]
        streams.append(tuple(sampler.rng.integers(0, 2**60, size=8)))
        assert len(set(streams)) == len(streams)
