"""Tests for repro.utils (rng helpers and timers)."""

import time

import numpy as np
import pytest

from repro.utils.rng import bernoulli, ensure_rng, spawn_rngs, weighted_choice
from repro.utils.timer import PhaseTimer, Stopwatch


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_objects(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [tuple(c.integers(0, 10**9, size=3)) for c in children]
        assert len(set(draws)) == 4

    def test_from_generator(self):
        rng = np.random.default_rng(0)
        children = spawn_rngs(rng, 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = ensure_rng(0)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert counts["a"] > counts["b"] * 2

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_choice(ensure_rng(0), ["a"], [0.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_choice(ensure_rng(0), ["a", "b"], [1.0, -1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_choice(ensure_rng(0), ["a"], [1.0, 2.0])


class TestBernoulli:
    def test_extreme_probabilities(self):
        rng = ensure_rng(0)
        assert all(bernoulli(rng, 1.5) for _ in range(10))
        assert not any(bernoulli(rng, -0.5) for _ in range(10))

    def test_rate_roughly_matches(self):
        rng = ensure_rng(1)
        rate = sum(bernoulli(rng, 0.25) for _ in range(4000)) / 4000
        assert 0.2 < rate < 0.3


class TestTimers:
    def test_stopwatch_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_stopwatch_stop_before_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.add("x", 0.5)
        timer.add("y", 2.0)
        assert timer.get("x") == pytest.approx(1.5)
        assert timer.get("missing") == 0.0
        assert timer.total() == pytest.approx(3.5)

    def test_phase_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_phase_context_manager(self):
        timer = PhaseTimer()
        with timer.phase("sleepy"):
            time.sleep(0.01)
        assert timer.get("sleepy") >= 0.009

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        merged = a.merge(b)
        assert merged.get("x") == 3.0
        assert merged.get("y") == 3.0
        # originals untouched
        assert a.get("x") == 1.0
