"""Tests for the overload layer (repro.server.overload) and transport chaos.

Three layers, mirroring the module:

* deterministic unit tests — every health/breaker/watchdog transition pinned
  with a manually-advanced clock, no sleeps, no wall time;
* service integration — the gate/breaker/watchdog wired through
  :meth:`SamplingService.handle`, still on an injected clock;
* transport — the slow-loris regression, the ``Retry-After`` header
  contract, client retries, :class:`ChaosClient` strikes, and the chaos
  soak that must drain to exactly zero inflight work.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.cache import SampleCache
from repro.resilience import FaultAction, FaultPlan, HTTP_FAULT_KINDS
from repro.server import (
    ChaosClient,
    SamplingService,
    ServerClient,
    ServerError,
    start_server,
)
from repro.server.overload import (
    DEGRADED,
    HEALTHY,
    OVERLOADED,
    BreakerRegistry,
    HealthMonitor,
    OverloadConfig,
    OverloadGate,
    Watchdog,
    retry_after_hint,
)
from repro.server.protocol import ERROR_CODES, RETRYABLE_CODES, RequestError


class ManualClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tight_config(**overrides) -> OverloadConfig:
    """Small round numbers so every threshold is arithmetic, not tuning."""
    options = dict(
        capacity_seconds=10.0, backlog_seconds=5.0, max_queue_wait=0.0,
        drain_rate=1.0, degraded_utilisation=0.5, overloaded_utilisation=0.9,
        degraded_miss_rate=0.1, overloaded_miss_rate=0.5,
        p99_budget_seconds=2.0, ewma_alpha=0.2, recovery_dwell_seconds=1.0,
        shed_ceiling_fraction=0.5, breaker_threshold=3,
        breaker_open_seconds=5.0, breaker_max_open_seconds=12.0,
        watchdog_grace_seconds=2.0, watchdog_default_budget=10.0,
    )
    options.update(overrides)
    return OverloadConfig(**options)


def make_service(**overrides) -> SamplingService:
    options = dict(workload_name="UQ1", scale_factor=0.0005, seed=3)
    options.update(overrides)
    return SamplingService(**options)


# --------------------------------------------------------------------- units
class TestRetryAfterHint:
    def test_is_drain_time_rounded_up(self):
        assert retry_after_hint(10.0, 2.0) == 5
        assert retry_after_hint(10.1, 2.0) == 6

    def test_never_below_one_second(self):
        assert retry_after_hint(0.001, 1.0) == 1
        assert retry_after_hint(0.0, 1.0) == 1
        assert retry_after_hint(5.0, 0.0) == 1


class TestOverloadConfigValidation:
    @pytest.mark.parametrize("bad", [
        {"capacity_seconds": 0.0},
        {"backlog_seconds": -1.0},
        {"degraded_utilisation": 0.95},  # above overloaded_utilisation
        {"degraded_miss_rate": 0.8},     # above overloaded_miss_rate
        {"ewma_alpha": 0.0},
        {"shed_ceiling_fraction": 1.5},
        {"breaker_threshold": 0},
        {"breaker_open_seconds": 120.0},  # above breaker_max_open_seconds
        {"watchdog_default_budget": 0.0},
    ])
    def test_rejects_nonsense(self, bad):
        with pytest.raises(ValueError):
            OverloadConfig(**bad)


class TestHealthMonitor:
    def test_escalates_immediately_on_utilisation(self):
        clock = ManualClock()
        monitor = HealthMonitor(tight_config(), clock)
        assert monitor.assess(0.0) == HEALTHY
        assert monitor.assess(0.6) == DEGRADED
        assert monitor.assess(0.95) == OVERLOADED

    def test_recovery_requires_the_dwell(self):
        clock = ManualClock()
        monitor = HealthMonitor(tight_config(), clock)
        assert monitor.assess(0.95) == OVERLOADED
        # Signals clear instantly, the state must not: hysteresis.
        assert monitor.assess(0.0) == OVERLOADED
        clock.advance(0.9)
        assert monitor.assess(0.0) == OVERLOADED
        clock.advance(0.2)  # past recovery_dwell_seconds=1.0
        assert monitor.assess(0.0) == HEALTHY

    def test_p99_envelope_jumps_then_decays_geometrically(self):
        clock = ManualClock()
        monitor = HealthMonitor(tight_config(), clock)
        monitor.record(5.0, deadline_missed=False)
        assert monitor.snapshot()["p99_ewma_seconds"] == 5.0
        # One spike is not forgotten instantly: 5.0 >= 2 * budget while it
        # decays by (1 - alpha) per subsequent fast request.
        assert monitor.assess(0.0) == OVERLOADED
        monitor.record(0.0, deadline_missed=False)
        assert monitor.snapshot()["p99_ewma_seconds"] == pytest.approx(4.0)
        monitor.record(0.0, deadline_missed=False)
        assert monitor.snapshot()["p99_ewma_seconds"] == pytest.approx(3.2)

    def test_miss_rate_is_plain_ewma(self):
        clock = ManualClock()
        monitor = HealthMonitor(tight_config(), clock)
        monitor.record(0.0, deadline_missed=True)
        assert monitor.snapshot()["deadline_miss_rate"] == pytest.approx(0.2)
        assert monitor.assess(0.0) == DEGRADED  # 0.2 >= degraded_miss_rate
        for _ in range(4):
            monitor.record(0.0, deadline_missed=True)
        assert monitor.snapshot()["deadline_miss_rate"] >= 0.5
        assert monitor.assess(0.0) == OVERLOADED


class TestOverloadGate:
    def make_gate(self, config=None, clock=None):
        clock = clock or ManualClock()
        config = config or tight_config()
        return OverloadGate(config, HealthMonitor(config, clock), clock), clock

    def test_admit_and_release_account_exactly(self):
        gate, _ = self.make_gate()
        ticket = gate.admit(3.0)
        assert gate.snapshot()["reserved_seconds"] == 3.0
        ticket.release()
        ticket.release()  # idempotent
        snapshot = gate.snapshot()
        assert snapshot["reserved_seconds"] == 0.0
        assert snapshot["admitted"] == 1
        assert snapshot["sheds"] == 0

    def test_overloaded_sheds_all_priced_work_but_not_free_probes(self):
        gate, _ = self.make_gate()
        # The third admit (at 8/10 = degraded) exactly fits the shrunken
        # ceiling of 0.5 * 2.0; reserved then hits 9/10 = overloaded.
        held = [gate.admit(4.0), gate.admit(4.0), gate.admit(1.0)]
        with pytest.raises(RequestError) as excinfo:
            gate.admit(0.5)
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after >= 1
        assert ERROR_CODES["overloaded"] == 503
        # The zero-priced probe (health never even enters the gate; this is
        # the degenerate priced-at-zero request) still passes.
        gate.admit(0.0).release()
        for ticket in held:
            ticket.release()

    def test_degraded_sheds_most_expensive_first(self):
        gate, _ = self.make_gate()
        held = gate.admit(3.0)
        held2 = gate.admit(3.0)
        # 6/10 reserved -> degraded; headroom 4, ceiling 0.5 * 4 = 2.
        with pytest.raises(RequestError) as excinfo:
            gate.admit(3.0)
        error = excinfo.value
        assert error.code == "admission-rejected"
        assert error.details["limit"] == "overload-shed"
        assert error.details["state"] == DEGRADED
        assert error.retry_after >= 1
        # A cheap request under the shrunken ceiling keeps flowing.
        cheap = gate.admit(1.0)
        cheap.release()
        held.release()
        held2.release()
        assert gate.snapshot()["sheds"] == 1

    def test_backlog_bound_sheds_with_retry_after(self):
        gate, _ = self.make_gate()
        # priced 6 > backlog_seconds=5 while healthy: shed as backlog-full.
        with pytest.raises(RequestError) as excinfo:
            gate.admit(6.0)
        assert excinfo.value.details["limit"] == "backlog"
        assert excinfo.value.retry_after == retry_after_hint(6.0, 1.0)

    def test_queue_wait_expiry_sheds_as_capacity(self):
        config = tight_config(backlog_seconds=8.0, degraded_utilisation=0.91,
                              overloaded_utilisation=0.95)
        gate, _ = self.make_gate(config)
        held = gate.admit(4.0)
        held2 = gate.admit(4.0)
        # 8 + 7 > capacity and max_queue_wait=0: the bounded wait expires
        # immediately and the request sheds with the capacity label.
        with pytest.raises(RequestError) as excinfo:
            gate.admit(7.0)
        assert excinfo.value.details["limit"] == "capacity"
        assert excinfo.value.retry_after >= 1
        held.release()
        held2.release()

    def test_backpressure_wait_admits_when_capacity_frees(self):
        config = tight_config(backlog_seconds=10.0, max_queue_wait=10.0,
                              degraded_utilisation=0.91,
                              overloaded_utilisation=0.95)
        clock = ManualClock()
        gate, _ = self.make_gate(config, clock)
        first = gate.admit(4.0)
        second = gate.admit(4.0)
        admitted = threading.Event()
        waiter_result = {}

        def waiter():
            ticket = gate.admit(4.0)  # 8 + 4 > 10: waits in the backlog
            waiter_result["ticket"] = ticket
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 5.0
        while gate.snapshot()["queued_seconds"] == 0.0:
            assert time.monotonic() < deadline, "waiter never queued"
            time.sleep(0.005)
        assert not admitted.is_set()
        first.release()  # notify_all wakes the waiter; 4 + 4 <= 10 now
        assert admitted.wait(timeout=5.0)
        thread.join(timeout=5.0)
        waiter_result["ticket"].release()
        second.release()
        snapshot = gate.snapshot()
        assert snapshot["reserved_seconds"] == 0.0
        assert snapshot["queued_seconds"] == 0.0
        assert snapshot["admitted"] == 3

    def test_disabled_gate_is_a_free_pass(self):
        clock = ManualClock()
        config = tight_config()
        gate = OverloadGate(None, HealthMonitor(config, clock), clock)
        ticket = gate.admit(1e9)
        ticket.release()
        assert gate.state() == HEALTHY
        assert gate.snapshot() == {"enabled": False, "state": HEALTHY}


class TestBreakerRegistry:
    KEY = ("UQ1_J1", "ew")

    def make_registry(self):
        clock = ManualClock()
        return BreakerRegistry(tight_config(), clock), clock

    def trip(self, registry, times=3):
        for _ in range(times):
            registry.check(self.KEY)
            registry.record(self.KEY, "failure")

    def test_threshold_consecutive_failures_open_the_breaker(self):
        registry, _ = self.make_registry()
        self.trip(registry, times=2)
        registry.check(self.KEY)  # 2 < threshold: still closed
        registry.record(self.KEY, "failure")
        with pytest.raises(RequestError) as excinfo:
            registry.check(self.KEY)
        assert excinfo.value.code == "circuit-open"
        assert excinfo.value.retry_after == 5  # the remaining open window
        assert ERROR_CODES["circuit-open"] == 503
        assert registry.state_of(self.KEY) == "open"

    def test_success_resets_the_consecutive_count(self):
        registry, _ = self.make_registry()
        self.trip(registry, times=2)
        registry.record(self.KEY, "success")
        self.trip(registry, times=2)
        registry.check(self.KEY)  # never reached 3 consecutive

    def test_half_open_allows_exactly_one_probe(self):
        registry, clock = self.make_registry()
        self.trip(registry)
        clock.advance(5.1)
        registry.check(self.KEY)  # the probe slot
        assert registry.state_of(self.KEY) == "half-open"
        with pytest.raises(RequestError) as excinfo:
            registry.check(self.KEY)  # a second concurrent probe is refused
        assert excinfo.value.code == "circuit-open"
        registry.record(self.KEY, "success")
        assert registry.state_of(self.KEY) == "closed"
        registry.check(self.KEY)

    def test_failed_probe_reopens_with_doubled_capped_window(self):
        registry, clock = self.make_registry()
        self.trip(registry)
        clock.advance(5.1)
        registry.check(self.KEY)
        registry.record(self.KEY, "failure")
        assert registry.state_of(self.KEY) == "open"
        clock.advance(9.9)  # window doubled to 10s: still open
        with pytest.raises(RequestError):
            registry.check(self.KEY)
        clock.advance(0.2)
        registry.check(self.KEY)
        registry.record(self.KEY, "failure")
        clock.advance(11.9)  # doubled again but capped at 12s
        with pytest.raises(RequestError):
            registry.check(self.KEY)
        clock.advance(0.2)
        registry.check(self.KEY)
        registry.record(self.KEY, "success")
        assert registry.state_of(self.KEY) == "closed"

    def test_neutral_outcome_returns_the_probe_slot(self):
        registry, clock = self.make_registry()
        self.trip(registry)
        clock.advance(5.1)
        registry.check(self.KEY)
        # The probe was shed by the gate: it carries no signal, but the slot
        # must come back or the breaker wedges half-open forever.
        registry.record(self.KEY, "neutral")
        assert registry.state_of(self.KEY) == "half-open"
        registry.check(self.KEY)  # next probe can proceed
        registry.record(self.KEY, "success")
        assert registry.state_of(self.KEY) == "closed"

    def test_keys_are_independent(self):
        registry, _ = self.make_registry()
        self.trip(registry)
        registry.check(("UQ1_J2", "ew"))
        registry.check(("UQ1_J1", "olken"))
        snapshot = registry.snapshot()
        assert snapshot["keys"] == 1
        assert snapshot["open"] == 1

    def test_unknown_outcome_rejected(self):
        registry, _ = self.make_registry()
        with pytest.raises(ValueError):
            registry.record(self.KEY, "maybe")


class TestWatchdog:
    def test_flags_requests_past_budget_plus_grace(self):
        clock = ManualClock()
        watchdog = Watchdog(tight_config(), clock)
        ticket = watchdog.watch("sample", "UQ1_J1", deadline=3.0)
        clock.advance(4.9)  # 3.0 budget + 2.0 grace not yet exceeded
        assert watchdog.scan() == []
        clock.advance(0.2)
        stuck = watchdog.scan()
        assert len(stuck) == 1
        assert stuck[0]["label"] == "UQ1_J1"
        assert stuck[0]["age_seconds"] == pytest.approx(5.1)
        ticket.release()
        assert watchdog.scan() == []
        assert watchdog.snapshot()["max_stuck_seen"] == 1

    def test_default_budget_applies_without_deadline(self):
        clock = ManualClock()
        watchdog = Watchdog(tight_config(), clock)
        ticket = watchdog.watch("aggregate", "union")
        clock.advance(11.9)  # 10.0 default budget + 2.0 grace
        assert watchdog.scan() == []
        clock.advance(0.2)
        assert len(watchdog.scan()) == 1
        ticket.release()


# --------------------------------------------------------- service integration
class TestServiceOverloadIntegration:
    def test_shed_responses_carry_retry_after_and_count_as_sheds(self):
        config = tight_config(capacity_seconds=1e-6, backlog_seconds=0.0)
        with make_service(warm_on_start=False, overload=config) as svc:
            response = svc.handle({
                "kind": "sample", "query": svc.workload.query_names[0],
                "count": 64, "seed": 1,
            })
            assert not response["ok"]
            error = response["error"]
            assert error["code"] == "admission-rejected"
            assert error["limit"] == "backlog"
            assert error["retry_after"] >= 1
            stats = svc.handle({"kind": "stats"})["result"]
            assert stats["counters"]["shed_requests"] == 1
            assert stats["overload"]["sheds"] == 1
            assert stats["admission"]["inflight"] == 0

    def test_health_always_served_and_reflects_overload(self):
        clock = ManualClock()
        # Keep the breaker out of the frame: this test is about the health
        # machine, and 4 consecutive misses on one key would trip it first.
        config = tight_config(breaker_threshold=10)
        with make_service(warm_on_start=False, overload=config,
                          clock=clock) as svc:
            assert svc.handle({"kind": "health"})["result"]["status"] == "ok"
            name = svc.workload.query_names[0]
            # Deadline misses drive the EWMA: 1 - 0.8^4 = 0.59 >= 0.5.
            for seed in range(4):
                missed = svc.handle({"kind": "sample", "query": name,
                                     "count": 64, "seed": seed,
                                     "deadline": 0.0})
                assert missed["error"]["code"] == "deadline-exceeded"
            health = svc.handle({"kind": "health"})["result"]
            assert health["status"] == OVERLOADED
            assert health["state"] == OVERLOADED
            # Priced work is shed outright while overloaded...
            shed = svc.handle({"kind": "sample", "query": name,
                               "count": 8, "seed": 9})
            assert shed["error"]["code"] == "overloaded"
            assert shed["error"]["retry_after"] >= 1
            # ...and recovery needs clean signals plus the dwell.
            monitor = svc._monitor
            for _ in range(12):
                monitor.record(0.0, deadline_missed=False)
            clock.advance(2.0)
            assert svc.handle({"kind": "health"})["result"]["status"] == "ok"
            served = svc.handle({"kind": "sample", "query": name,
                                 "count": 8, "seed": 9})
            assert served["ok"], served

    def test_breaker_opens_on_consecutive_failures_and_probes_closed(self):
        clock = ManualClock()
        config = tight_config(
            breaker_threshold=2,
            # Miss-driven health transitions are exercised above; here they
            # would only add gate sheds on top, so park them out of reach.
            degraded_miss_rate=0.98, overloaded_miss_rate=0.99,
        )
        with make_service(warm_on_start=False, overload=config,
                          clock=clock) as svc:
            name = svc.workload.query_names[0]
            request = {"kind": "sample", "query": name, "count": 64, "seed": 1}
            for _ in range(2):
                missed = svc.handle({**request, "deadline": 0.0})
                assert missed["error"]["code"] == "deadline-exceeded"
            tripped = svc.handle(request)
            assert tripped["error"]["code"] == "circuit-open"
            assert tripped["error"]["retry_after"] >= 1
            # Only (query, weights) = (name, ew) is open.
            other = svc.handle({"kind": "sample",
                                "query": svc.workload.query_names[1],
                                "count": 4, "seed": 1})
            assert other["ok"], other
            clock.advance(5.1)  # open window elapses: one probe allowed
            probe = svc.handle(request)
            assert probe["ok"], probe
            assert svc._breakers.state_of((name, "ew")) == "closed"
            stats = svc.handle({"kind": "stats"})["result"]
            assert stats["breakers"]["rejections"] >= 1
            assert stats["admission"]["inflight"] == 0
            assert stats["admission"]["inflight_seconds"] == 0.0

    def test_watchdog_surfaces_stuck_requests_in_health(self):
        clock = ManualClock()
        with make_service(warm_on_start=False, overload=tight_config(),
                          clock=clock) as svc:
            ticket = svc._watchdog.watch("sample", "UQ1_J1", deadline=1.0)
            clock.advance(3.5)
            health = svc.handle({"kind": "health"})["result"]
            assert health["status"] == "degraded"
            assert health["stuck_requests"] == 1
            stats = svc.handle({"kind": "stats"})["result"]["watchdog"]
            assert stats["stuck"] == 1
            assert stats["stuck_requests"][0]["label"] == "UQ1_J1"
            ticket.release()
            assert svc.handle({"kind": "health"})["result"]["status"] == "ok"

    def test_disabled_overload_is_bit_identical_to_enabled(self):
        request = {"kind": "sample", "query": "UQ1_J1", "count": 24, "seed": 7}
        with make_service(warm_on_start=False, overload=False) as plain:
            with make_service(warm_on_start=False, overload=True) as guarded:
                assert plain.handle(request) == guarded.handle(request)
                stats = plain.handle({"kind": "stats"})["result"]
                assert stats["overload"] == {"enabled": False,
                                             "state": HEALTHY}
                assert not stats["breakers"]["enabled"]


# ----------------------------------------------------------------- transport
class TestRetryAfterOverHTTP:
    @pytest.fixture(scope="class")
    def shedding_server(self):
        svc = make_service(
            warm_on_start=False,
            overload=tight_config(capacity_seconds=1e-6, backlog_seconds=0.0),
        )
        server, _ = start_server(svc, port=0)
        yield server
        server.shutdown()
        svc.close()

    def test_retry_after_header_mirrors_the_payload(self, shedding_server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", shedding_server.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/api",
                body=json.dumps({"kind": "sample", "query": "UQ1_J1",
                                 "count": 64, "seed": 1}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 429
            header = response.getheader("Retry-After")
            assert header is not None and int(header) >= 1
            assert int(header) == int(payload["error"]["retry_after"])
        finally:
            conn.close()

    def test_client_error_object_exposes_the_hint(self, shedding_server):
        client = ServerClient(port=shedding_server.port)
        with pytest.raises(ServerError) as excinfo:
            client.sample("UQ1_J1", 64, seed=1)
        assert excinfo.value.code == "admission-rejected"
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.retryable
        # Permanent refusals must NOT look retryable.
        with pytest.raises(ServerError) as excinfo:
            client.sample("nope", 4)
        assert excinfo.value.code == "unknown-query"
        assert excinfo.value.retry_after is None
        assert not excinfo.value.retryable

    def test_health_is_served_even_by_a_shedding_server(self, shedding_server):
        assert ServerClient(port=shedding_server.port).health()["workload"]


class TestSlowLorisRegression:
    def test_stalled_connection_is_cut_and_serving_continues(self):
        svc = make_service(warm_on_start=False)
        server, _ = start_server(svc, port=0, connection_timeout=0.75)
        try:
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=30)
            try:
                # A slow-loris opener: headers started, then silence.
                sock.sendall(b"POST /api HTTP/1.1\r\nHost: loris\r\n")
                sock.settimeout(10.0)
                started = time.monotonic()
                # The per-connection timeout must cut us off (EOF), long
                # before our own 10s read timeout.
                assert sock.recv(1024) == b""
                assert time.monotonic() - started < 8.0
            finally:
                sock.close()
            # The handler thread was released, not pinned: service goes on.
            assert ServerClient(port=server.port).health()["workload"]
        finally:
            server.shutdown()
            svc.close()

    def test_many_concurrent_loris_connections_cannot_starve_the_server(self):
        svc = make_service(warm_on_start=False)
        server, _ = start_server(svc, port=0, connection_timeout=0.75)
        try:
            socks = []
            for _ in range(8):
                sock = socket.create_connection(("127.0.0.1", server.port),
                                                timeout=30)
                sock.sendall(b"POST /api HTTP/1.1\r\n")
                socks.append(sock)
            try:
                # With 8 stalled peers holding connections, a real client
                # still gets served within the connection timeout budget.
                assert ServerClient(port=server.port).health()["workload"]
            finally:
                for sock in socks:
                    sock.close()
        finally:
            server.shutdown()
            svc.close()


class TestClientRetries:
    class ScriptedClient(ServerClient):
        """ServerClient whose transport is a scripted list of outcomes."""

        def __init__(self, script, **kwargs):
            super().__init__(port=1, **kwargs)
            self.script = list(script)

        def request(self, payload):
            outcome = self.script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

    @staticmethod
    def rejection(code, retry_after=None):
        error = {"code": code, "message": "scripted"}
        if retry_after is not None:
            error["retry_after"] = retry_after
        return {"ok": False, "error": error}

    @pytest.fixture
    def sleeps(self, monkeypatch):
        recorded = []
        monkeypatch.setattr("repro.server.http.time.sleep", recorded.append)
        return recorded

    def test_retryable_rejections_are_retried_until_success(self, sleeps):
        client = self.ScriptedClient(
            [self.rejection("overloaded", retry_after=1),
             self.rejection("admission-rejected", retry_after=1),
             {"ok": True, "result": {"fine": True}}],
            retries=3,
        )
        assert client.call({"kind": "sample", "seed": 4}) == {"fine": True}
        assert client.retries_performed == 2
        assert len(sleeps) == 2

    def test_retry_budget_is_bounded(self, sleeps):
        client = self.ScriptedClient(
            [self.rejection("overloaded", retry_after=1)] * 3, retries=2
        )
        with pytest.raises(ServerError) as excinfo:
            client.call({"kind": "sample", "seed": 4})
        assert excinfo.value.code == "overloaded"
        assert len(sleeps) == 2

    def test_non_retryable_errors_fail_fast(self, sleeps):
        client = self.ScriptedClient(
            [self.rejection("invalid-request")], retries=5
        )
        with pytest.raises(ServerError):
            client.call({"kind": "sample", "seed": 4})
        assert sleeps == []
        assert client.retries_performed == 0

    def test_transport_failures_are_retried(self, sleeps):
        client = self.ScriptedClient(
            [ConnectionResetError("boom"), TimeoutError("slow"),
             {"ok": True, "result": {"fine": True}}],
            retries=2,
        )
        assert client.call({"kind": "sample", "seed": 4}) == {"fine": True}
        assert client.retries_performed == 2

    def test_backoff_is_deterministic_and_honors_retry_after(self, sleeps):
        script = [self.rejection("overloaded", retry_after=3),
                  self.rejection("overloaded"),
                  {"ok": True, "result": {}}]
        first = self.ScriptedClient(list(script), retries=2, retry_seed=9)
        first.call({"kind": "sample", "seed": 4})
        first_sleeps = list(sleeps)
        sleeps.clear()
        second = self.ScriptedClient(list(script), retries=2, retry_seed=9)
        second.call({"kind": "sample", "seed": 4})
        # keyed_rng jitter: same (client seed, request seed, attempt) ->
        # the exact same backoff schedule, run to run.
        assert sleeps == first_sleeps
        # The server hint raises the backoff floor (base is 0.05s).
        assert first_sleeps[0] >= 3.0
        sleeps.clear()
        third = self.ScriptedClient(list(script), retries=2, retry_seed=10)
        third.call({"kind": "sample", "seed": 4})
        assert sleeps != first_sleeps

    def test_oversized_hints_are_capped(self, sleeps):
        client = self.ScriptedClient(
            [self.rejection("overloaded", retry_after=3600),
             {"ok": True, "result": {}}],
            retries=1, max_retry_after=2.0,
        )
        client.call({"kind": "sample", "seed": 4})
        assert sleeps[0] <= 2.0 + 0.1  # capped hint plus small backoff slack

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServerClient(retries=-1)


class TestTransportChaos:
    @pytest.fixture(scope="class")
    def server(self):
        svc = make_service(warm_on_start=False)
        server, _ = start_server(svc, port=0, connection_timeout=0.75)
        yield server
        server.shutdown()
        svc.close()

    def chaos(self, server, scripted, **kwargs):
        plan = FaultPlan(scripted={
            (index, 0): FaultAction(kind) for index, kind in scripted.items()
        })
        return ChaosClient("127.0.0.1", server.port, plan, **kwargs)

    def test_schedule_is_deterministic_and_http_only(self, server):
        plan = FaultPlan(seed=5, rate=1.0, kinds=HTTP_FAULT_KINDS + ("raise",))
        chaos = ChaosClient("127.0.0.1", server.port, plan)
        schedule = [chaos.action_for(i) for i in range(32)]
        again = [chaos.action_for(i) for i in range(32)]
        assert schedule == again
        kinds = {action.kind for action in schedule if action is not None}
        assert kinds and kinds <= set(HTTP_FAULT_KINDS)
        # Worker-level kinds are not transport strikes: a mixed plan can
        # drive both layers from one seed without double-firing.
        worker_only = ChaosClient(
            "127.0.0.1", server.port,
            FaultPlan(seed=5, rate=1.0, kinds=("raise",)),
        )
        assert worker_only.strike(0) is None

    def test_garbage_flood_answers_400_and_serving_continues(self, server):
        chaos = self.chaos(server, {i: "garbage" for i in range(4)})
        for i in range(4):
            assert chaos.strike(i)["status"] == 400
        assert chaos.strikes["garbage"] == 4
        assert ServerClient(port=server.port).health()["workload"]

    def test_oversized_body_refused_unread(self, server):
        chaos = self.chaos(server, {0: "oversize"})
        outcome = chaos.strike(0)
        assert outcome["status"] == 400
        assert ServerClient(port=server.port).health()["workload"]

    def test_connection_reset_mid_response_survived(self, server):
        chaos = self.chaos(server, {i: "reset" for i in range(3)})
        for i in range(3):
            chaos.strike(i)
        # The RSTs may or may not land before the tiny response is flushed;
        # the invariant is the server survives them all, uncorrupted.
        client = ServerClient(port=server.port)
        assert client.health()["workload"]
        assert client.stats()["counters"]["transport_errors"] >= 0

    def test_slow_write_client_is_cut_by_the_watchdog_timeout(self, server):
        chaos = self.chaos(server, {0: "slow-write"}, slow_write_seconds=3.0)
        outcome = chaos.strike(0)
        # 3s of dripping against a 0.75s connection timeout: the server must
        # cut the connection rather than wait out the body.
        assert outcome["connection_cut"]
        assert ServerClient(port=server.port).health()["workload"]


# ----------------------------------------------------------------------- soak
class TestChaosSoak:
    """Satellite (d): concurrency + worker faults + transport chaos, then
    the server must drain to *exactly* zero inflight work with every served
    answer still a pure function of (request, snapshot)."""

    def test_soak_drains_to_zero_and_stays_pure(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.1")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        svc = make_service(cache=SampleCache())
        server, _ = start_server(svc, port=0, connection_timeout=1.0)
        errors = []
        allowed = set(ERROR_CODES) | set(RETRYABLE_CODES)

        def request_mix(worker):
            names = svc.workload.query_names
            mix = []
            for i in range(4):
                seed = 100 * worker + i
                mix.append({"kind": "sample", "query": names[(worker + i) % 3],
                            "count": 16 + i, "seed": seed})
                mix.append({"kind": "aggregate", "query": names[i % 3],
                            "aggregate": "count", "rel_error": 0.3,
                            "method": "exact-weight", "seed": seed})
            mix.append({"kind": "sample", "query": "union", "count": 12,
                        "seed": worker})
            mix.append({"kind": "stats"})
            return mix

        def worker(index):
            client = ServerClient(port=server.port, retries=2,
                                  retry_seed=index, max_retry_after=0.2)
            for request in request_mix(index):
                try:
                    client.call(request)
                except ServerError as error:
                    if error.code not in allowed:
                        errors.append(error)
                except (ConnectionError, TimeoutError, OSError):
                    pass  # transport chaos biting this client's connection

        def mutator():
            client = ServerClient(port=server.port)
            for i in range(3):
                try:
                    client.mutate("orders", [i])
                except ServerError as error:
                    errors.append(error)
                time.sleep(0.05)

        def chaos_worker():
            plan = FaultPlan(seed=11, rate=1.0, kinds=HTTP_FAULT_KINDS)
            chaos = ChaosClient("127.0.0.1", server.port, plan,
                                slow_write_seconds=1.5)
            for i in range(6):
                chaos.strike(i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=mutator))
        threads.append(threading.Thread(target=chaos_worker))
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            assert not any(t.is_alive() for t in threads), "soak wedged"
            assert not errors, errors
            # ---- the drain invariant: EXACTLY zero, not approximately ----
            stats = ServerClient(port=server.port).stats()
            assert stats["admission"]["inflight"] == 0
            assert stats["admission"]["inflight_seconds"] == 0.0
            assert stats["overload"]["reserved_seconds"] == 0.0
            assert stats["overload"]["queued_seconds"] == 0.0
            assert stats["watchdog"]["active"] == 0
            assert stats["counters"]["ok"] > 0
            # ---- purity: the soaked server's warm state is uncorrupted ---
            # A fresh overload-free service over the *same* (mutated)
            # relations must agree bit-for-bit on the quiesced snapshot.
            with SamplingService(workload=svc.workload, seed=3,
                                 warm_on_start=False,
                                 overload=False) as reference:
                probes = [
                    {"kind": "sample", "query": name, "count": 20,
                     "seed": 12345}
                    for name in svc.workload.query_names
                ]
                probes.append({"kind": "aggregate", "query":
                               svc.workload.query_names[0],
                               "aggregate": "count", "rel_error": 0.2,
                               "method": "exact-weight", "seed": 6,
                               "cache": False})
                for probe in probes:
                    soaked = svc.handle(probe)
                    fresh = reference.handle(probe)
                    assert soaked == fresh, probe
        finally:
            server.shutdown()
            svc.close()
