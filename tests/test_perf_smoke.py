"""Performance smoke gate for the batched sampling engine.

A tiny-scale version of ``benchmarks/bench_micro.py`` wired into tier-1: the
batched path must deliver at least the scalar reference path's throughput, so
a regression that silently disables the vectorized engine fails the test
suite rather than only the (optional) benchmark run.  Thresholds are
deliberately loose — the real speedup is recorded in
``BENCH_batch_engine.json`` — to keep the test robust on noisy CI machines.
"""

import time

import pytest

from repro.sampling.blocks import SampleBlock
from repro.sampling.join_sampler import JoinSampler
from repro.tpch.workloads import build_uq2

SMOKE_SCALE = 0.0005
SMOKE_SEED = 7


@pytest.fixture(scope="module")
def smoke_query():
    return build_uq2(scale_factor=SMOKE_SCALE, seed=SMOKE_SEED).queries[0]


def _scalar_rate(sampler: JoinSampler, attempts: int) -> float:
    accepted = 0
    started = time.perf_counter()
    for _ in range(attempts):
        if sampler.try_sample() is not None:
            accepted += 1
    elapsed = time.perf_counter() - started
    assert accepted > 0, "scalar path accepted nothing; smoke workload broken"
    return accepted / elapsed


def _batch_rate(sampler: JoinSampler, count: int) -> float:
    started = time.perf_counter()
    draws = sampler.sample_batch(count)
    elapsed = time.perf_counter() - started
    assert len(draws) == count
    return count / elapsed


@pytest.mark.parametrize("weights", ["ew", "eo"])
def test_batch_path_at_least_scalar_throughput(smoke_query, weights):
    scalar = JoinSampler(smoke_query, weights=weights, seed=11)
    batched = JoinSampler(smoke_query, weights=weights, seed=13)
    # Warm both paths so index/plan construction stays outside the timing.
    for _ in range(50):
        scalar.try_sample()
    batched.sample_batch(50)

    scalar_rate = _scalar_rate(scalar, attempts=400)
    batch_rate = _batch_rate(batched, count=2000)
    assert batch_rate >= scalar_rate, (
        f"batched sampling ({batch_rate:.0f}/s) slower than scalar "
        f"({scalar_rate:.0f}/s) — vectorized engine regressed"
    )


def test_batch_and_scalar_agree_on_acceptance(smoke_query):
    """Cross-check riding along with the smoke gate: both paths must see the
    same acceptance behaviour on the smoke workload (EW never rejects)."""
    sampler = JoinSampler(smoke_query, weights="ew", seed=17)
    sampler.sample_batch(500)
    assert sampler.stats.acceptance_rate == pytest.approx(1.0)


def test_block_pipeline_at_least_boxed_throughput(smoke_query):
    """The zero-object aggregate pipeline must not regress below the boxed
    path it replaced: sample_block -> ingest_block vs sample_batch ->
    observe, same draws, same estimator state (the real margin — >= 2x on
    the TPC-H workloads — is recorded in ``BENCH_pipeline.json``; the gate
    here is deliberately loose for noisy CI machines)."""
    from repro.aqp import AggregateAccumulator, AggregateSpec

    spec = AggregateSpec("sum", attribute="retailprice")

    def boxed_rate(count):
        sampler = JoinSampler(smoke_query, weights="ew", seed=19)
        accumulator = AggregateAccumulator(spec, smoke_query.output_schema)
        weight = sampler.weight_function.total_weight
        sampler.sample_batch(50)
        sampler.pop_buffered()
        started = time.perf_counter()
        before = sampler.stats.attempts
        draws = sampler.sample_batch(count)
        draws.extend(sampler.pop_buffered())
        accumulator.observe(
            [d.value for d in draws],
            attempts=sampler.stats.attempts - before,
            weight=weight,
        )
        return len(draws) / (time.perf_counter() - started)

    def block_rate(count):
        sampler = JoinSampler(smoke_query, weights="ew", seed=19)
        accumulator = AggregateAccumulator(spec, smoke_query.output_schema)
        weight = sampler.weight_function.total_weight
        sampler.sample_block(50)
        sampler.pop_buffered_blocks()
        started = time.perf_counter()
        before = sampler.stats.attempts
        blocks = [sampler.sample_block(count)]
        blocks.extend(sampler.pop_buffered_blocks())
        block = SampleBlock.concat(blocks)
        accumulator.ingest_block(
            block.value_columns(smoke_query),
            attempts=sampler.stats.attempts - before,
            weight=weight,
        )
        return len(block) / (time.perf_counter() - started)

    boxed = boxed_rate(4000)
    block = block_rate(4000)
    assert block >= boxed, (
        f"block pipeline ({block:.0f}/s) slower than boxed path "
        f"({boxed:.0f}/s) — zero-object pipeline regressed"
    )
