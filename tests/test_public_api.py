"""Sanity checks on the public package surface (`import repro`)."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_docstring_quickstart_runs(self):
        """The module docstring's quickstart snippet must stay executable."""
        workload = repro.build_uq1(scale_factor=0.0005, overlap_scale=0.3, seed=7)
        estimator = repro.HistogramUnionEstimator(workload.queries, join_size_method="ew")
        sampler = repro.SetUnionSampler(workload.queries, estimator, seed=7)
        assert len(sampler.sample(20)) == 20

    @pytest.mark.parametrize(
        "module",
        [
            "repro.relational",
            "repro.joins",
            "repro.sampling",
            "repro.estimation",
            "repro.core",
            "repro.tpch",
            "repro.analysis",
            "repro.experiments",
            "repro.utils",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_and_documented(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} is missing a module docstring"

    def test_main_module_exposes_cli(self):
        main_module = importlib.import_module("repro.__main__")
        assert callable(main_module.main)

    def test_public_classes_have_docstrings(self):
        for name in (
            "SetUnionSampler",
            "OnlineUnionSampler",
            "BernoulliUnionSampler",
            "DisjointUnionSampler",
            "HistogramUnionEstimator",
            "RandomWalkUnionEstimator",
            "FullJoinUnionEstimator",
            "JoinSampler",
            "WanderJoin",
            "JoinQuery",
            "Relation",
        ):
            assert getattr(repro, name).__doc__, f"{name} is missing a docstring"
