"""Tests for repro.estimation.union_size (Theorem 3, Eq. 1, cover sizes)."""

import itertools

import pytest

from repro.estimation.union_size import (
    MAX_JOINS_FOR_EXACT_LATTICE,
    compute_all_overlaps,
    compute_k_overlaps,
    cover_sizes_from_overlaps,
    powerset,
    union_size_from_k_overlaps,
    union_size_inclusion_exclusion,
)


def overlaps_from_sets(sets):
    """Exact |O_Δ| for every subset of a dict name -> python set."""
    names = list(sets)

    def overlap_of(subset):
        members = [sets[name] for name in subset]
        common = set.intersection(*members)
        return float(len(common))

    return compute_all_overlaps(names, overlap_of)


SETS_A = {
    "J1": {1, 2, 3, 4},
    "J2": {3, 4, 5},
    "J3": {4, 5, 6, 7},
}
UNION_A = SETS_A["J1"] | SETS_A["J2"] | SETS_A["J3"]


class TestPowerset:
    def test_counts(self):
        assert len(powerset(["a", "b", "c"])) == 7
        assert len(powerset(["a", "b", "c"], min_size=2)) == 4

    def test_lattice_size_guard(self):
        names = [f"J{i}" for i in range(MAX_JOINS_FOR_EXACT_LATTICE + 1)]
        with pytest.raises(ValueError):
            compute_all_overlaps(names, lambda s: 1.0)


class TestKOverlaps:
    def test_k_overlaps_match_hand_counts(self):
        overlaps = overlaps_from_sets(SETS_A)
        areas = compute_k_overlaps(list(SETS_A), overlaps)
        # J1 = {1,2,3,4}: 1,2 exclusive (k=1); 3 shared with J2 only (k=2);
        # 4 shared with J2 and J3 (k=3).
        assert areas["J1"][1] == pytest.approx(2.0)
        assert areas["J1"][2] == pytest.approx(1.0)
        assert areas["J1"][3] == pytest.approx(1.0)
        # J3 = {4,5,6,7}: 6,7 exclusive; 5 shared with J2; 4 shared with all.
        assert areas["J3"][1] == pytest.approx(2.0)
        assert areas["J3"][2] == pytest.approx(1.0)
        assert areas["J3"][3] == pytest.approx(1.0)

    def test_k_overlap_sum_equals_join_size(self):
        overlaps = overlaps_from_sets(SETS_A)
        areas = compute_k_overlaps(list(SETS_A), overlaps)
        for name, values in SETS_A.items():
            assert sum(areas[name].values()) == pytest.approx(len(values))

    def test_union_size_equation_1(self):
        overlaps = overlaps_from_sets(SETS_A)
        areas = compute_k_overlaps(list(SETS_A), overlaps)
        assert union_size_from_k_overlaps(areas) == pytest.approx(len(UNION_A))

    def test_union_size_matches_inclusion_exclusion(self):
        overlaps = overlaps_from_sets(SETS_A)
        areas = compute_k_overlaps(list(SETS_A), overlaps)
        assert union_size_from_k_overlaps(areas) == pytest.approx(
            union_size_inclusion_exclusion(list(SETS_A), overlaps)
        )

    def test_disjoint_sets(self):
        sets = {"A": {1, 2}, "B": {3}, "C": {4, 5, 6}}
        overlaps = overlaps_from_sets(sets)
        areas = compute_k_overlaps(list(sets), overlaps)
        assert union_size_from_k_overlaps(areas) == pytest.approx(6.0)
        for name in sets:
            assert areas[name][1] == pytest.approx(len(sets[name]))
            assert areas[name][2] == 0.0

    def test_identical_sets(self):
        sets = {"A": {1, 2, 3}, "B": {1, 2, 3}}
        overlaps = overlaps_from_sets(sets)
        areas = compute_k_overlaps(list(sets), overlaps)
        assert union_size_from_k_overlaps(areas) == pytest.approx(3.0)
        assert areas["A"][2] == pytest.approx(3.0)
        assert areas["A"][1] == pytest.approx(0.0)


class TestCoverSizes:
    def test_cover_sizes_match_sequential_difference(self):
        overlaps = overlaps_from_sets(SETS_A)
        covers = cover_sizes_from_overlaps(list(SETS_A), overlaps)
        # |J'_1| = |J1| = 4; |J'_2| = |J2 \ J1| = |{5}| = 1 ... wait {3,4,5}\{1,2,3,4} = {5}
        assert covers["J1"] == pytest.approx(4.0)
        assert covers["J2"] == pytest.approx(1.0)
        # |J'_3| = |J3 \ (J1 ∪ J2)| = |{6, 7}| = 2
        assert covers["J3"] == pytest.approx(2.0)

    def test_cover_sizes_sum_to_union(self):
        overlaps = overlaps_from_sets(SETS_A)
        covers = cover_sizes_from_overlaps(list(SETS_A), overlaps)
        assert sum(covers.values()) == pytest.approx(len(UNION_A))

    def test_cover_depends_on_order(self):
        overlaps = overlaps_from_sets(SETS_A)
        reordered = cover_sizes_from_overlaps(["J3", "J2", "J1"], overlaps)
        assert reordered["J3"] == pytest.approx(4.0)
        assert sum(reordered.values()) == pytest.approx(len(UNION_A))

    def test_clamping_of_noisy_estimates(self):
        # Deliberately inconsistent overlaps (estimation noise) must not make a
        # cover negative.
        overlaps = {
            frozenset(["A"]): 5.0,
            frozenset(["B"]): 5.0,
            frozenset(["A", "B"]): 9.0,  # larger than either join: impossible
        }
        covers = cover_sizes_from_overlaps(["A", "B"], overlaps)
        assert covers["B"] >= 0.0


class TestMonotonicityEnforcement:
    def test_overlaps_are_clamped_to_subset_minimum(self):
        def noisy_overlap(subset):
            if len(subset) == 1:
                return 10.0
            if len(subset) == 2:
                return 4.0
            return 7.0  # violates monotonicity vs the pairwise 4.0

        overlaps = compute_all_overlaps(["A", "B", "C"], noisy_overlap)
        assert overlaps[frozenset(["A", "B", "C"])] <= 4.0

    def test_negative_overlaps_clamped_to_zero(self):
        overlaps = compute_all_overlaps(["A", "B"], lambda s: -1.0 if len(s) > 1 else 3.0)
        assert overlaps[frozenset(["A", "B"])] == 0.0
