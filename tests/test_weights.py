"""Tests for repro.sampling.weights (EW and EO weight functions)."""

import pytest

from repro.joins.executor import exact_join_size
from repro.joins.join_tree import build_join_tree
from repro.sampling.olken import olken_upper_bound
from repro.sampling.weights import (
    ExactWeightFunction,
    ExtendedOlkenWeightFunction,
    make_weight_function,
)


class TestExactWeights:
    @pytest.mark.parametrize("fixture", ["chain_query", "acyclic_query"])
    def test_total_weight_equals_exact_size(self, fixture, request):
        query = request.getfixturevalue(fixture)
        ew = ExactWeightFunction(query)
        assert ew.total_weight == exact_join_size(query, distinct=False)

    def test_cyclic_total_weight_is_skeleton_size(self, cyclic_query):
        # Exact weights are computed on the skeleton; residual conditions can
        # only remove results, so the total is an upper bound for cyclic joins.
        ew = ExactWeightFunction(cyclic_query)
        assert ew.total_weight >= exact_join_size(cyclic_query, distinct=False)

    def test_root_weights_per_row(self, chain_query):
        ew = ExactWeightFunction(chain_query)
        # R rows: (1,10) joins 2 S rows each joining 1 T row -> 2 results;
        #         (2,20) joins 1 S row joining 2 T rows -> 2; (3,10) -> 2.
        assert list(ew.root_weights()) == [2.0, 2.0, 2.0]

    def test_weight_lookup_per_node(self, chain_query):
        ew = ExactWeightFunction(chain_query)
        tree = ew.tree
        s_node = tree.node_for("S")
        # S rows (10,100) and (10,200) each extend to exactly one T row.
        assert ew.weight(s_node, 0) == 1.0
        t_node = tree.node_for("T")
        assert ew.weight(t_node, 0) == 1.0

    def test_acceptance_bound_is_none(self, chain_query):
        ew = ExactWeightFunction(chain_query)
        for node in ew.tree.root.walk():
            assert ew.acceptance_bound(node) is None

    def test_empty_join_total_weight_zero(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[(1, 99)], s_rows=[(10, 100)])
        assert ExactWeightFunction(query).total_weight == 0.0


class TestExtendedOlkenWeights:
    def test_total_weight_equals_olken_bound_without_pruning(self, chain_query):
        eo = ExtendedOlkenWeightFunction(chain_query, prune_dangling=False)
        assert eo.total_weight == olken_upper_bound(chain_query)

    def test_pruning_never_increases_bound(self, chain_query):
        pruned = ExtendedOlkenWeightFunction(chain_query, prune_dangling=True)
        unpruned = ExtendedOlkenWeightFunction(chain_query, prune_dangling=False)
        assert pruned.total_weight <= unpruned.total_weight

    def test_pruning_zeroes_dangling_root_rows(self):
        from tests.conftest import make_chain_query

        # R row (9, 99) has no joinable S row.
        query = make_chain_query(
            "dangling", r_rows=[(1, 10), (9, 99)], s_rows=[(10, 100), (10, 200)]
        )
        eo = ExtendedOlkenWeightFunction(query, prune_dangling=True)
        weights = list(eo.root_weights())
        assert weights[1] == 0.0
        assert weights[0] > 0.0

    def test_total_dominates_exact_weights(self, chain_query, acyclic_query):
        for query in (chain_query, acyclic_query):
            eo = ExtendedOlkenWeightFunction(query)
            ew = ExactWeightFunction(query)
            assert eo.total_weight >= ew.total_weight

    def test_acceptance_bound_positive_for_non_root(self, chain_query):
        eo = ExtendedOlkenWeightFunction(chain_query)
        for node in eo.tree.root.walk():
            if not node.is_root:
                assert eo.acceptance_bound(node) > 0

    def test_cap_lookup(self, chain_query):
        eo = ExtendedOlkenWeightFunction(chain_query)
        assert eo.cap("T") == 1.0
        assert eo.cap("S") == 2.0  # M_c(T)=2 * cap(T)=1
        assert eo.cap("R") == 4.0


class TestFactory:
    def test_make_weight_function_aliases(self, chain_query):
        assert isinstance(make_weight_function("ew", chain_query), ExactWeightFunction)
        assert isinstance(make_weight_function("exact", chain_query), ExactWeightFunction)
        assert isinstance(
            make_weight_function("eo", chain_query), ExtendedOlkenWeightFunction
        )
        assert isinstance(
            make_weight_function("olken", chain_query), ExtendedOlkenWeightFunction
        )

    def test_unknown_method_rejected(self, chain_query):
        with pytest.raises(ValueError):
            make_weight_function("magic", chain_query)
