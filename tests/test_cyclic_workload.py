"""End-to-end tests of the cyclic-join union workload (Fig. 1 / §8.2 machinery)."""

import pytest

from repro.core.union_sampler import SetUnionSampler
from repro.core.online_sampler import OnlineUnionSampler
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.random_walk import RandomWalkUnionEstimator
from repro.joins.executor import exact_overlap_size, join_result_set
from repro.joins.join_tree import build_join_tree
from repro.joins.query import JoinType
from repro.sampling.join_sampler import JoinSampler
from repro.tpch.cyclic import build_cyclic_bundle_workload


@pytest.fixture(scope="module")
def cy_workload():
    return build_cyclic_bundle_workload(scale_factor=0.0005, overlap_scale=0.4, seed=13)


class TestWorkloadStructure:
    def test_join_types(self, cy_workload):
        types = {q.name: q.join_type for q in cy_workload.queries}
        assert types["CY_W"] is JoinType.CYCLIC
        assert types["CY_E"] is JoinType.CHAIN or types["CY_E"] is JoinType.ACYCLIC

    def test_cycle_produces_residual_conditions(self, cy_workload):
        tree = build_join_tree(cy_workload.query("CY_W"))
        assert tree.has_residuals

    def test_queries_overlap(self, cy_workload):
        assert exact_overlap_size(cy_workload.queries) > 0

    def test_cyclic_and_denormalized_views_agree_on_shared_customers(self, cy_workload):
        """The cyclic self-join and the denormalized pair view describe the same
        logical result; on customers visible to both joins they must coincide."""
        results_w = join_result_set(cy_workload.query("CY_W"))
        results_e = join_result_set(cy_workload.query("CY_E"))
        customers_w = {value[0] for value in results_w}
        customers_e = {value[0] for value in results_e}
        shared = customers_w & customers_e
        assert shared
        shared_w = {v for v in results_w if v[0] in shared}
        shared_e = {v for v in results_e if v[0] in shared}
        assert shared_w == shared_e

    def test_invalid_overlap_scale(self):
        with pytest.raises(ValueError):
            build_cyclic_bundle_workload(overlap_scale=2.0)


class TestCyclicSampling:
    def test_single_join_sampler_respects_cycle(self, cy_workload):
        query = cy_workload.query("CY_W")
        results = join_result_set(query)
        sampler = JoinSampler(query, weights="ew", seed=3)
        for draw in sampler.sample_many(100):
            assert draw.value in results
        assert sampler.stats.rejected_residual >= 0

    def test_estimators_run_on_cyclic_union(self, cy_workload):
        exact = FullJoinUnionEstimator(cy_workload.queries).estimate()
        histogram = HistogramUnionEstimator(cy_workload.queries, join_size_method="ew").estimate()
        walks = RandomWalkUnionEstimator(
            cy_workload.queries, walks_per_join=400, seed=5
        ).estimate()
        assert exact.union_size > 0
        assert histogram.union_size > 0
        assert walks.union_size == pytest.approx(exact.union_size, rel=0.4)

    def test_set_union_sampling_over_cyclic_union(self, cy_workload):
        exact = FullJoinUnionEstimator(cy_workload.queries).estimate()
        universe = set()
        for query in cy_workload.queries:
            universe |= join_result_set(query)
        sampler = SetUnionSampler(cy_workload.queries, exact, seed=7, mode="strict")
        result = sampler.sample(150)
        assert len(result) == 150
        assert all(s.value in universe for s in result.samples)
        assert set(result.sources()) <= {"CY_W", "CY_E"}

    def test_online_sampling_over_cyclic_union(self, cy_workload):
        universe = set()
        for query in cy_workload.queries:
            universe |= join_result_set(query)
        sampler = OnlineUnionSampler(cy_workload.queries, seed=9, walks_per_join=200)
        result = sampler.sample(100)
        assert len(result) == 100
        assert all(s.value in universe for s in result.samples)
