"""Tests for repro.relational.relation."""

import numpy as np
import pytest

from repro.relational.predicates import Comparison
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


@pytest.fixture
def people() -> Relation:
    return Relation(
        "people",
        [Attribute("id"), Attribute("age"), Attribute("city", "str")],
        [(1, 30, "rome"), (2, 25, "oslo"), (3, 30, "rome"), (4, 40, "lima")],
    )


class TestConstruction:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Relation("", ["a"], [])

    def test_rejects_row_width_mismatch(self):
        with pytest.raises(ValueError, match="fields"):
            Relation("r", ["a", "b"], [(1,)])

    def test_from_dicts(self):
        rel = Relation.from_dicts("r", ["a", "b"], [{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert rel.rows == [(1, 2), (3, 4)]

    def test_from_columns(self):
        rel = Relation.from_columns("r", {"a": [1, 2], "b": [3, 4]})
        assert rel.rows == [(1, 3), (2, 4)]

    def test_from_columns_unequal_lengths(self):
        with pytest.raises(ValueError, match="unequal"):
            Relation.from_columns("r", {"a": [1], "b": [1, 2]})

    def test_from_columns_requires_columns(self):
        with pytest.raises(ValueError):
            Relation.from_columns("r", {})


class TestAccess:
    def test_len_iter_getitem(self, people):
        assert len(people) == 4
        assert people[0] == (1, 30, "rome")
        assert list(people)[-1] == (4, 40, "lima")

    def test_column_and_value(self, people):
        assert people.column("age") == [30, 25, 30, 40]
        assert people.value(2, "city") == "rome"

    def test_project_row(self, people):
        assert people.project_row(1, ["city", "id"]) == ("oslo", 2)

    def test_sample_row_uniform_support(self, people):
        rng = np.random.default_rng(0)
        seen = {people.sample_row(rng) for _ in range(200)}
        assert seen == set(people.rows)

    def test_sample_row_empty_raises(self):
        with pytest.raises(ValueError):
            Relation("r", ["a"], []).sample_row(np.random.default_rng(0))


class TestMutation:
    def test_append_and_extend(self):
        rel = Relation("r", ["a"], [(1,)])
        rel.append((2,))
        rel.extend([(3,), (4,)])
        assert len(rel) == 4

    def test_append_invalidates_indexes_and_statistics(self):
        rel = Relation("r", ["a"], [(1,)])
        assert rel.index_on("a").degree(1) == 1
        assert rel.max_degree("a") == 1
        rel.append((1,))
        assert rel.index_on("a").degree(1) == 2
        assert rel.max_degree("a") == 2

    def test_append_checks_width(self):
        rel = Relation("r", ["a"], [])
        with pytest.raises(ValueError):
            rel.append((1, 2))


class TestIndexesAndStatistics:
    def test_index_on_caches_and_answers(self, people):
        idx = people.index_on("age")
        assert idx.positions(30) == (0, 2)
        assert people.index_on("age") is idx

    def test_index_on_columns_composite(self, people):
        idx = people.index_on_columns(["age", "city"])
        assert idx.positions((30, "rome")) == (0, 2)
        assert idx.positions((30, "oslo")) == ()

    def test_index_on_columns_single_delegates(self, people):
        assert people.index_on_columns(["age"]) is people.index_on("age")

    def test_degree_and_max_degree(self, people):
        assert people.degree("city", "rome") == 2
        assert people.degree("city", "nowhere") == 0
        assert people.max_degree("city") == 2

    def test_statistics_on_columns(self, people):
        stats = people.statistics_on_columns(["age", "city"])
        assert stats.degree((30, "rome")) == 2
        assert stats.max_degree == 2


class TestDerivations:
    def test_project_keeps_duplicates(self, people):
        projected = people.project(["city"])
        assert len(projected) == 4
        assert projected.column("city").count("rome") == 2

    def test_select_with_predicate_object(self, people):
        young = people.select(Comparison("age", "<", 35))
        assert len(young) == 3

    def test_select_with_callable(self, people):
        rome = people.select(lambda row, schema: row[schema.position("city")] == "rome")
        assert len(rome) == 2

    def test_rename(self, people):
        renamed = people.rename({"id": "person_id"}, name="p2")
        assert renamed.name == "p2"
        assert "person_id" in renamed.schema
        assert renamed.rows == people.rows

    def test_distinct(self):
        rel = Relation("r", ["a"], [(1,), (2,), (1,)])
        assert rel.distinct().rows == [(1,), (2,)]
