"""Tests for repro.relational.relation."""

import numpy as np
import pytest

from repro.relational.predicates import Comparison
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


@pytest.fixture
def people() -> Relation:
    return Relation(
        "people",
        [Attribute("id"), Attribute("age"), Attribute("city", "str")],
        [(1, 30, "rome"), (2, 25, "oslo"), (3, 30, "rome"), (4, 40, "lima")],
    )


class TestConstruction:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Relation("", ["a"], [])

    def test_rejects_row_width_mismatch(self):
        with pytest.raises(ValueError, match="fields"):
            Relation("r", ["a", "b"], [(1,)])

    def test_from_dicts(self):
        rel = Relation.from_dicts("r", ["a", "b"], [{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert rel.rows == [(1, 2), (3, 4)]

    def test_from_columns(self):
        rel = Relation.from_columns("r", {"a": [1, 2], "b": [3, 4]})
        assert rel.rows == [(1, 3), (2, 4)]

    def test_from_columns_unequal_lengths(self):
        with pytest.raises(ValueError, match="unequal"):
            Relation.from_columns("r", {"a": [1], "b": [1, 2]})

    def test_from_columns_requires_columns(self):
        with pytest.raises(ValueError):
            Relation.from_columns("r", {})


class TestAccess:
    def test_len_iter_getitem(self, people):
        assert len(people) == 4
        assert people[0] == (1, 30, "rome")
        assert list(people)[-1] == (4, 40, "lima")

    def test_column_and_value(self, people):
        assert people.column("age") == [30, 25, 30, 40]
        assert people.value(2, "city") == "rome"

    def test_project_row(self, people):
        assert people.project_row(1, ["city", "id"]) == ("oslo", 2)

    def test_sample_row_uniform_support(self, people):
        rng = np.random.default_rng(0)
        seen = {people.sample_row(rng) for _ in range(200)}
        assert seen == set(people.rows)

    def test_sample_row_empty_raises(self):
        with pytest.raises(ValueError):
            Relation("r", ["a"], []).sample_row(np.random.default_rng(0))


class TestMutation:
    def test_append_and_extend(self):
        rel = Relation("r", ["a"], [(1,)])
        rel.append((2,))
        rel.extend([(3,), (4,)])
        assert len(rel) == 4

    def test_append_invalidates_indexes_and_statistics(self):
        rel = Relation("r", ["a"], [(1,)])
        assert rel.index_on("a").degree(1) == 1
        assert rel.max_degree("a") == 1
        rel.append((1,))
        assert rel.index_on("a").degree(1) == 2
        assert rel.max_degree("a") == 2

    def test_append_checks_width(self):
        rel = Relation("r", ["a"], [])
        with pytest.raises(ValueError):
            rel.append((1, 2))


class TestNoOpMutationsPreserveCaches:
    """Regression: no-op mutations must be provably cache-preserving — same
    index/statistics objects, same version — not merely 'decided by flag'."""

    @pytest.fixture
    def cached(self, people) -> dict:
        return {
            "index": people.index_on("age"),
            "csr": people.sorted_index_on_columns(["age"]),
            "stats": people.statistics_on("age"),
            "columns": people.column_array("age"),
            "version": people.version,
        }

    def _assert_preserved(self, people, cached):
        assert people.version == cached["version"]
        assert people.index_on("age") is cached["index"]
        assert people.sorted_index_on_columns(["age"]) is cached["csr"]
        assert people.statistics_on("age") is cached["stats"]
        assert people.column_array("age") is cached["columns"]

    def test_empty_extend_is_noop(self, people, cached):
        people.extend([])
        people.extend(iter(()))
        self._assert_preserved(people, cached)

    def test_delete_matching_nothing_is_noop(self, people, cached):
        assert people.delete_where(lambda row, schema: False) == 0
        assert people.delete_rows([]) == 0
        self._assert_preserved(people, cached)

    def test_update_assigning_identical_values_is_noop(self, people, cached):
        assert people.update(lambda row, schema: True, {"age": lambda old: old}) == 0
        assert people.update_rows([0, 1], {"city": lambda old: old}) == 0
        self._assert_preserved(people, cached)

    def test_effective_mutation_bumps_version_once(self, people, cached):
        people.extend([(5, 50, "kyiv"), (6, 60, "lima")])
        assert people.version == cached["version"] + 1
        assert people.index_on("age").degree(50) == 1

    def test_empty_extend_does_not_invalidate_unbuilt_caches_later(self):
        rel = Relation("r", ["a"], [(1,), (1,)])
        rel.extend([])
        assert rel.version == 0
        assert rel.index_on("a").degree(1) == 2


class TestDeleteAndUpdate:
    def test_delete_rows_swap_remove_density(self, people):
        assert people.delete_rows([1]) == 1
        # the last row was swapped into the hole: storage stays dense
        assert len(people) == 3
        assert people[1] == (4, 40, "lima")
        assert people.index_on("age").positions(40) == (1,)

    def test_delete_where_with_predicate_object(self, people):
        assert people.delete_where(Comparison("age", ">=", 30)) == 3
        assert people.rows == [(2, 25, "oslo")]

    def test_duplicate_delete_positions_counted_once(self, people):
        assert people.delete_rows([0, 0, 0]) == 1
        assert len(people) == 3

    def test_update_with_mapping_and_callable(self, people):
        people.index_on("city")  # built before: the update must maintain it
        people.statistics_on("city")
        changed = people.update(
            Comparison("city", "==", "rome"),
            {"age": lambda old: old + 1, "city": "florence"},
        )
        assert changed == 2
        assert people.column("city").count("florence") == 2
        assert people.index_on("city").positions("rome") == ()
        assert people.statistics_on("city").degree("florence") == 2

    def test_update_out_of_range_raises(self, people):
        with pytest.raises(IndexError):
            people.update_rows([99], {"age": 1})


class TestIndexesAndStatistics:
    def test_index_on_caches_and_answers(self, people):
        idx = people.index_on("age")
        assert idx.positions(30) == (0, 2)
        assert people.index_on("age") is idx

    def test_index_on_columns_composite(self, people):
        idx = people.index_on_columns(["age", "city"])
        assert idx.positions((30, "rome")) == (0, 2)
        assert idx.positions((30, "oslo")) == ()

    def test_index_on_columns_single_delegates(self, people):
        assert people.index_on_columns(["age"]) is people.index_on("age")

    def test_degree_and_max_degree(self, people):
        assert people.degree("city", "rome") == 2
        assert people.degree("city", "nowhere") == 0
        assert people.max_degree("city") == 2

    def test_statistics_on_columns(self, people):
        stats = people.statistics_on_columns(["age", "city"])
        assert stats.degree((30, "rome")) == 2
        assert stats.max_degree == 2


class TestDerivations:
    def test_project_keeps_duplicates(self, people):
        projected = people.project(["city"])
        assert len(projected) == 4
        assert projected.column("city").count("rome") == 2

    def test_select_with_predicate_object(self, people):
        young = people.select(Comparison("age", "<", 35))
        assert len(young) == 3

    def test_select_with_callable(self, people):
        rome = people.select(lambda row, schema: row[schema.position("city")] == "rome")
        assert len(rome) == 2

    def test_rename(self, people):
        renamed = people.rename({"id": "person_id"}, name="p2")
        assert renamed.name == "p2"
        assert "person_id" in renamed.schema
        assert renamed.rows == people.rows

    def test_distinct(self):
        rel = Relation("r", ["a"], [(1,), (2,), (1,)])
        assert rel.distinct().rows == [(1,), (2,)]
