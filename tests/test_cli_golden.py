"""Golden-output regression tests for the CLI.

Each case runs ``repro <subcommand>`` with fixed seeds and compares the
stdout — minus wall-clock lines — against a checked-in golden file in
``tests/goldens/``.  The goldens pin the full user-visible behaviour of the
CLI (estimates, intervals, sample values, planner decisions), so an
accidental change to any layer underneath shows up as a readable diff.

Regenerate after an intentional behaviour change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_cli_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "goldens"
UPDATE_GOLDENS = os.environ.get("UPDATE_GOLDENS") == "1"

COMMON = ["--scale-factor", "0.0005", "--seed", "3"]

CASES = {
    "cli_sample_set_union.json": [
        "sample", "--workload", "UQ2", "--samples", "20",
        "--sampler", "set-union", "--warmup", "histogram", *COMMON,
    ],
    "cli_sample_auto_weights.json": [
        "sample", "--workload", "UQ2", "--samples", "15",
        "--sampler", "set-union", "--warmup", "histogram",
        "--weights", "auto", *COMMON,
    ],
    "cli_estimate_uq2.json": [
        "estimate", "--workload", "UQ2", "--walks", "120", *COMMON,
    ],
    "cli_aggregate_join_sum.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.1", "--json", *COMMON,
    ],
    "cli_aggregate_groupby_avg.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "avg",
        "--attribute", "totalprice", "--group-by", "mktsegment",
        "--rel-error", "0.1", "--json", *COMMON,
    ],
    "cli_aggregate_union_sum.json": [
        "aggregate", "--workload", "UQ3", "--target", "union",
        "--aggregate", "sum", "--attribute", "totalprice",
        "--rel-error", "0.1", "--json", *COMMON,
    ],
}


def _normalize(output: str) -> List[str]:
    """Drop non-deterministic (wall-clock) lines; keep everything else."""
    return [
        line
        for line in output.rstrip("\n").splitlines()
        if not line.startswith("time breakdown")
    ]


@pytest.mark.parametrize("name", sorted(CASES))
def test_cli_golden(name, capsys):
    args = CASES[name]
    code = main(args)
    output = capsys.readouterr().out
    assert code == 0
    lines = _normalize(output)
    path = GOLDEN_DIR / name

    if UPDATE_GOLDENS:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps({"args": args, "lines": lines}, indent=2) + "\n",
            encoding="utf-8",
        )
    if not path.exists():
        pytest.fail(
            f"golden {path.name} missing; regenerate with "
            "UPDATE_GOLDENS=1 python -m pytest tests/test_cli_golden.py"
        )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert golden["args"] == args, "golden was generated with different arguments"
    assert lines == golden["lines"]


def test_goldens_have_no_timing_lines():
    """The goldens themselves must never contain wall-clock output."""
    for name in CASES:
        path = GOLDEN_DIR / name
        if not path.exists():  # pragma: no cover - covered by test_cli_golden
            continue
        golden = json.loads(path.read_text(encoding="utf-8"))
        assert not any(line.startswith("time breakdown") for line in golden["lines"])
