"""Golden-output regression tests for the CLI.

Each case runs ``repro <subcommand>`` with fixed seeds and compares exit
code, stdout — minus wall-clock lines — and stderr against a checked-in
golden file in ``tests/goldens/``.  The goldens pin the full user-visible
behaviour of the CLI (estimates, intervals, sample values, planner
decisions, *and* the one-line error messages of the failure paths), so an
accidental change to any layer underneath shows up as a readable diff.

Regenerate after an intentional behaviour change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_cli_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "goldens"
UPDATE_GOLDENS = os.environ.get("UPDATE_GOLDENS") == "1"

COMMON = ["--scale-factor", "0.0005", "--seed", "3"]

CASES = {
    "cli_sample_set_union.json": [
        "sample", "--workload", "UQ2", "--samples", "20",
        "--sampler", "set-union", "--warmup", "histogram", *COMMON,
    ],
    "cli_sample_auto_weights.json": [
        "sample", "--workload", "UQ2", "--samples", "15",
        "--sampler", "set-union", "--warmup", "histogram",
        "--weights", "auto", *COMMON,
    ],
    # The parallel service answer must not depend on the worker count, so the
    # same golden is asserted for 2 and 3 workers (see test_parallel_workers
    # below).
    "cli_sample_parallel.json": [
        "sample", "--workload", "UQ1", "--samples", "12",
        "--workers", "2", *COMMON,
    ],
    "cli_estimate_uq2.json": [
        "estimate", "--workload", "UQ2", "--walks", "120", *COMMON,
    ],
    "cli_aggregate_join_sum.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.1", "--json", *COMMON,
    ],
    "cli_aggregate_groupby_avg.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "avg",
        "--attribute", "totalprice", "--group-by", "mktsegment",
        "--rel-error", "0.1", "--json", *COMMON,
    ],
    "cli_aggregate_union_sum.json": [
        "aggregate", "--workload", "UQ3", "--target", "union",
        "--aggregate", "sum", "--attribute", "totalprice",
        "--rel-error", "0.1", "--json", *COMMON,
    ],
    "cli_aggregate_parallel.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.1",
        "--workers", "2", "--json", *COMMON,
    ],
    # Run 2 re-consumes the stream run 1 published: the golden pins the
    # cached/fresh split (run 2 fully cached) along with the estimates.
    "cli_aggregate_cached_repeat.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.1",
        "--method", "exact-weight", "--cache", "--repeat", "2",
        "--json", *COMMON,
    ],
    # ----------------------------------------------------------- error paths
    # Invalid flag combinations must exit non-zero with a one-line stderr
    # message, never a traceback.
    "cli_err_sample_workers_zero.json": [
        "sample", "--workload", "UQ1", "--workers", "0", *COMMON,
    ],
    "cli_err_sample_workers_with_sampler_flags.json": [
        "sample", "--workload", "UQ1", "--workers", "2",
        "--sampler", "bernoulli", "--weights", "eo", *COMMON,
    ],
    "cli_err_aggregate_workers_negative.json": [
        "aggregate", "--workload", "UQ1", "--workers", "-2", *COMMON,
    ],
    "cli_err_sum_missing_attribute.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum", *COMMON,
    ],
    "cli_err_union_backend_on_join.json": [
        "aggregate", "--workload", "UQ1", "--method", "online-union", *COMMON,
    ],
    "cli_err_join_backend_on_union.json": [
        "aggregate", "--workload", "UQ3", "--target", "union",
        "--method", "wander-join", *COMMON,
    ],
    "cli_err_count_star_over_union.json": [
        "aggregate", "--workload", "UQ3", "--target", "union",
        "--aggregate", "count", *COMMON,
    ],
    "cli_err_unknown_join_name.json": [
        "aggregate", "--workload", "UQ1", "--query", "NOPE", *COMMON,
    ],
    # The cache serves one sequential draw stream; sharded workers would
    # double-consume it, so the combination is refused up front.
    "cli_err_aggregate_cache_workers.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--cache", "--workers", "2", *COMMON,
    ],
    # ------------------------------------------------- resilience / deadlines
    # A zero deadline is the deterministic way to pin the deadline-exceeded
    # paths: no shard/step can complete, so the output never depends on
    # machine speed.  Exit code 3 = "ran out of time" (vs 1 = "cannot run").
    "cli_err_aggregate_deadline_exceeded.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.1",
        "--deadline", "0", *COMMON,
    ],
    "cli_err_sample_deadline_exceeded.json": [
        "sample", "--workload", "UQ1", "--samples", "12",
        "--workers", "2", "--deadline", "0", *COMMON,
    ],
    "cli_err_sample_resilience_flags_without_workers.json": [
        "sample", "--workload", "UQ1", "--deadline", "5",
        "--shard-timeout", "1", *COMMON,
    ],
    # A partial report is only honest when it contains samples: the budget
    # (not the wall clock) is exhausted here, so the degraded report and its
    # achieved error are deterministic.
    "cli_aggregate_allow_partial.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.001",
        "--max-attempts", "400", "--allow-partial", "--json", *COMMON,
    ],
    # --allow-partial with a zero deadline accepts *nothing*: there is no
    # honest partial estimate (a zero-width CI around 0.0 would be a lie),
    # so the CLI refuses with the out-of-time exit code instead of printing
    # a degraded report with zero samples.
    "cli_err_aggregate_empty_partial.json": [
        "aggregate", "--workload", "UQ1", "--aggregate", "sum",
        "--attribute", "totalprice", "--rel-error", "0.1",
        "--deadline", "0", "--allow-partial", *COMMON,
    ],
    "cli_sample_parallel_partial.json": [
        "sample", "--workload", "UQ1", "--samples", "12",
        "--workers", "2", "--deadline", "0", "--allow-partial", *COMMON,
    ],
}

#: Deadline-exceeded cases exit with the dedicated code 3, so schedulers can
#: distinguish "give it more time / --allow-partial" from hard failures.
DEADLINE_CASES = (
    "cli_err_aggregate_deadline_exceeded.json",
    "cli_err_sample_deadline_exceeded.json",
    # empty-partial is an out-of-time failure too: the deadline expired
    # before a single sample was accepted
    "cli_err_aggregate_empty_partial.json",
)


def _normalize(output: str) -> List[str]:
    """Drop non-deterministic (wall-clock) lines; keep everything else."""
    return [
        line
        for line in output.rstrip("\n").splitlines()
        if not line.startswith("time breakdown")
    ]


def _run_case(args: List[str], capsys) -> dict:
    code = main(args)
    captured = capsys.readouterr()
    return {
        "args": args,
        "exit_code": code,
        "lines": _normalize(captured.out),
        "stderr": _normalize(captured.err),
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_cli_golden(name, capsys):
    args = CASES[name]
    observed = _run_case(args, capsys)
    if name.startswith("cli_err_"):
        assert observed["exit_code"] != 0, "error cases must exit non-zero"
        assert len(observed["stderr"]) == 1, "error cases print exactly one stderr line"
        assert observed["stderr"][0].startswith("error: ")
    else:
        assert observed["exit_code"] == 0
    if name in DEADLINE_CASES:
        assert observed["exit_code"] == 3, "deadline failures use exit code 3"
    if name == "cli_aggregate_allow_partial.json":
        payload = json.loads("\n".join(observed["lines"]))
        assert payload["report"]["degraded"] is True
        assert "achieved_rel_error" in payload["report"]
        # the empty-partial contract: a degraded report always has samples
        assert payload["report"]["accepted"] > 0

    path = GOLDEN_DIR / name
    if UPDATE_GOLDENS:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(observed, indent=2) + "\n", encoding="utf-8")
    if not path.exists():
        pytest.fail(
            f"golden {path.name} missing; regenerate with "
            "UPDATE_GOLDENS=1 python -m pytest tests/test_cli_golden.py"
        )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert golden["args"] == args, "golden was generated with different arguments"
    assert observed["exit_code"] == golden["exit_code"]
    assert observed["lines"] == golden["lines"]
    assert observed["stderr"] == golden["stderr"]


def test_parallel_workers_do_not_change_the_answer(capsys):
    """--workers N is an execution knob: the golden holds for other counts."""
    base = CASES["cli_sample_parallel.json"]
    swapped = ["3" if (base[i - 1] == "--workers") else arg for i, arg in enumerate(base)]
    observed = _run_case(swapped, capsys)
    path = GOLDEN_DIR / "cli_sample_parallel.json"
    if not path.exists():  # pragma: no cover - covered by test_cli_golden
        pytest.skip("golden not generated yet")
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert observed["lines"][1:] == golden["lines"][1:]  # header names the count
    assert observed["exit_code"] == 0


def test_goldens_have_no_timing_lines():
    """The goldens themselves must never contain wall-clock output."""
    for name in CASES:
        path = GOLDEN_DIR / name
        if not path.exists():  # pragma: no cover - covered by test_cli_golden
            continue
        golden = json.loads(path.read_text(encoding="utf-8"))
        assert not any(line.startswith("time breakdown") for line in golden["lines"])
