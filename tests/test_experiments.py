"""Tests for repro.experiments (reporting and figure harness)."""

import math

import pytest

from repro.experiments.config import BENCH_CONFIG, DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.figures import (
    INSTANTIATIONS,
    build_workload,
    make_estimator,
    run_ablation_bernoulli,
    run_ablation_template,
    run_fig4_ratio_error,
    run_fig5_breakdown,
    run_fig5_sample_size,
    run_fig5a_ratio_error,
    run_fig6_reuse_per_sample,
    run_fig6_reuse_time,
)
from repro.experiments.reporting import SeriesTable, combine_tables


#: A configuration small enough for unit tests.
TINY = ExperimentConfig(
    scale_factor=0.0005,
    overlap_scales=(0.2, 0.6),
    sample_sizes=(20, 40),
    data_scales=(0.0005,),
    walks_per_join=150,
    seed=7,
)


class TestSeriesTable:
    def test_add_row_and_columns(self):
        table = SeriesTable("demo", "x")
        table.add_row(1, a=2.0, b=3.0)
        table.add_row(2, a=4.0, c=5.0)
        assert table.columns == ["x", "a", "b", "c"]
        assert table.column("a") == [2.0, 4.0]
        assert table.column("b") == [3.0, None]

    def test_to_text_contains_all_cells(self):
        table = SeriesTable("demo", "x")
        table.add_row(1, value=0.5)
        text = table.to_text()
        assert "# demo" in text
        assert "x" in text and "value" in text and "0.5" in text

    def test_missing_values_rendered_as_dash(self):
        table = SeriesTable("demo", "x")
        table.add_row(1, a=1.0)
        table.add_row(2, b=2.0)
        assert "-" in table.to_text()

    def test_combine_tables(self):
        a = SeriesTable("one", "x")
        a.add_row(1, v=1)
        b = SeriesTable("two", "x")
        b.add_row(2, v=2)
        combined = combine_tables([a, b])
        assert "# one" in combined and "# two" in combined


class TestConfig:
    def test_default_configs_are_consistent(self):
        assert DEFAULT_CONFIG.scale_factor > 0
        assert BENCH_CONFIG.scale_factor <= DEFAULT_CONFIG.scale_factor
        assert all(0 <= o <= 1 for o in DEFAULT_CONFIG.overlap_scales)

    def test_scaled_down(self):
        smaller = DEFAULT_CONFIG.scaled_down(0.5)
        assert smaller.scale_factor == DEFAULT_CONFIG.scale_factor * 0.5
        assert len(smaller.overlap_scales) <= len(DEFAULT_CONFIG.overlap_scales)


class TestFigureHarness:
    def test_build_workload_dispatch(self):
        assert build_workload("UQ1", TINY).name == "UQ1"
        assert build_workload("uq2", TINY).name == "UQ2"
        with pytest.raises(ValueError):
            build_workload("UQ7", TINY)

    def test_make_estimator_dispatch(self):
        workload = build_workload("UQ2", TINY)
        assert make_estimator("histogram", workload.queries, TINY).method == "histogram"
        assert make_estimator("random-walk", workload.queries, TINY).method == "random-walk"
        assert make_estimator("full-join", workload.queries, TINY).method == "full-join"
        with pytest.raises(ValueError):
            make_estimator("oracle", workload.queries, TINY)

    def test_fig4_ratio_error_rows(self):
        table = run_fig4_ratio_error("UQ2", TINY)
        assert len(table.rows) == len(TINY.overlap_scales)
        for value in table.column("mean_error"):
            assert value >= 0.0 and not math.isnan(value)

    def test_fig5a_reports_both_methods(self):
        table = run_fig5a_ratio_error(TINY)
        assert set(table.columns) >= {"join", "histogram_eo_error", "random_walk_error"}
        # Random walks are the accurate method in the paper; at this scale they
        # must not be drastically worse than the histogram bound on average.
        walk = table.column("random_walk_error")
        assert all(v < 0.5 for v in walk)

    def test_fig5_sample_size_monotone_columns(self):
        table = run_fig5_sample_size("UQ2", TINY)
        assert [row["samples"] for row in table.rows] == list(TINY.sample_sizes)
        for label, _, _ in INSTANTIATIONS:
            assert all(v > 0 for v in table.column(label))

    def test_fig5_breakdown_phases_present(self):
        table = run_fig5_breakdown("UQ2", TINY, sample_size=30)
        assert len(table.rows) == len(INSTANTIATIONS)
        for row in table.rows:
            assert row["accepted_seconds"] >= 0.0
            assert row["estimation_seconds"] >= 0.0

    def test_fig6_reuse_tables(self):
        time_table = run_fig6_reuse_time(TINY, workload_names=("UQ2",))
        assert len(time_table.rows) == len(TINY.sample_sizes)
        assert any("reuse" in c for c in time_table.columns)
        per_sample = run_fig6_reuse_per_sample(TINY, workload_names=("UQ2",), sample_size=30)
        assert per_sample.rows[0]["reused_samples"] >= 0

    def test_ablation_bernoulli(self):
        table = run_ablation_bernoulli(TINY, sample_size=40)
        policies = [row["policy"] for row in table.rows]
        assert policies == ["bernoulli", "cover-record", "cover-strict"]
        assert all(row["draws_per_sample"] >= 1.0 for row in table.rows)

    def test_ablation_template_optimized_not_looser_than_naive(self):
        table = run_ablation_template(TINY)
        by_label = {row["template"]: row for row in table.rows}
        assert by_label["score-optimized"]["overlap_bound"] <= (
            by_label["alphabetical"]["overlap_bound"] * 1.001
        )
        # Both are upper bounds on the exact overlap.
        for row in table.rows:
            assert row["overlap_bound"] >= row["exact_overlap"] * 0.999
