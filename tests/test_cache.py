"""Tests for the cross-query sample cache tier (repro.cache).

The load-bearing invariants, in order of importance:

1. **Honest statistics.**  A cache-hit answer is a valid Horvitz–Thompson
   estimate with honest CI width — pinned by ``assert_ci_coverage`` over a
   repeated-with-variation workload where every measured run is served from
   cached blocks.
2. **Cold runs are bit-identical.**  An absent cache and an empty cache
   produce byte-for-byte the reports the PR 7 pipeline produced: the cache
   never consumes RNG state or changes batch sizes.
3. **No stale epochs.**  Any interleaving of mutations and aggregates never
   serves a block drawn under an older relation version (the Hypothesis
   property at the bottom).
4. **Bounded memory.**  Eviction is LRU over entries, accounted in bytes.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aqp import AggregateSpec, OnlineAggregator, exact_aggregate
from repro.cache import SampleCache, epoch_vector, shape_key
from repro.cache.store import CachedStream
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.executor import execute_join
from repro.joins.query import JoinQuery
from repro.relational.relation import Relation
from repro.sampling.blocks import SampleBlock

from tests.stat_helpers import assert_ci_coverage

TRIALS = 120
MIN_COVERAGE = 0.90


def build_chain(rows: int = 40, name: str = "cached_chain") -> JoinQuery:
    """R(a,b) ⋈ S(b,c): big enough to sample, small enough to join exactly."""
    r_rows = [(i, i % 7) for i in range(rows)]
    s_rows = [(b, float(100 * b + j)) for b in range(7) for j in range(3)]
    return JoinQuery(
        name,
        [Relation("R", ["a", "b"], r_rows), Relation("S", ["b", "c"], s_rows)],
        [JoinCondition("R", "b", "S", "b")],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
    )


def sum_truth(query: JoinQuery) -> float:
    spec = AggregateSpec("sum", attribute="c")
    return exact_aggregate(execute_join(query), spec, query.output_schema)[()]


def make_block(n: int, weight: float = 6.0, attempts: int = None) -> SampleBlock:
    return SampleBlock(
        relation_order=("R", "S"),
        positions={
            "R": np.arange(n, dtype=np.intp),
            "S": np.arange(n, dtype=np.intp),
        },
        attempts=n if attempts is None else attempts,
        weight=weight,
    )


# ------------------------------------------------------------------ block views
class TestBlockViews:
    def test_slice_is_zero_copy(self):
        block = make_block(8)
        view = block.slice(2, 5)
        assert len(view) == 3
        assert view.attempts == 0
        assert view.positions["R"].base is block.positions["R"]
        assert np.array_equal(view.positions["R"], [2, 3, 4])

    def test_split_matches_slice_semantics(self):
        block = make_block(10, attempts=25)
        head, tail = block.split(4)
        assert len(head) == 4 and len(tail) == 6
        # Attempt accounting stays with the head — the caller accounted it.
        assert head.attempts == 25 and tail.attempts == 0

    def test_reweighted_view_shares_positions(self):
        block = make_block(5, weight=6.0)
        view = block.reweighted(7.5)
        assert view.weight == 7.5 and block.weight == 6.0
        assert view.positions is block.positions
        assert view.attempts == block.attempts

    def test_reweighted_refuses_per_sample_weights(self):
        block = make_block(3)
        block.weights = np.ones(3)
        with pytest.raises(ValueError, match="per-sample"):
            block.reweighted(2.0)

    def test_freeze_makes_arrays_read_only(self):
        block = make_block(4).freeze()
        with pytest.raises(ValueError):
            block.positions["R"][0] = 99

    def test_nbytes_counts_position_and_weight_arrays(self):
        block = make_block(6)
        expected = block.positions["R"].nbytes + block.positions["S"].nbytes
        assert block.nbytes == expected
        block.weights = np.ones(6)
        assert block.nbytes == expected + block.weights.nbytes


# ------------------------------------------------------------------- the store
class TestSampleCache:
    def test_entry_keyed_by_shape_and_epoch(self):
        query = build_chain()
        cache = SampleCache()
        entry = cache.entry(query, "ew")
        assert cache.entry(query, "ew") is entry, "same shape+epoch reuses"
        assert cache.entry(query, "eo") is not entry, "weights split the key"
        assert cache.stats_dict()["hits"] == 1

    def test_shape_key_distinguishes_query_names(self):
        a, b = build_chain(name="qa"), build_chain(name="qb")
        assert shape_key(a, "ew") != shape_key(b, "ew")

    def test_mutation_drops_only_touched_entries(self):
        q1, q2 = build_chain(name="q1"), build_chain(name="q2")
        cache = SampleCache()
        e1, e2 = cache.entry(q1, "ew"), cache.entry(q2, "ew")
        cache.publish(e1, make_block(4))
        cache.publish(e2, make_block(4))
        # q1's R mutates: only q1's entry must go (q2 has its own relations).
        q1.relation("R").delete_rows([0])
        dropped = cache.drop_relation("R")
        # Eager drop is by relation *name*: both entries reference an "R".
        assert dropped == 2
        # The lazy path is per-object: re-resolving q2 (whose R did not
        # change) starts a fresh entry at its unchanged epoch.
        fresh = cache.entry(q2, "ew")
        assert fresh.epoch == epoch_vector(q2)

    def test_stale_epoch_is_a_miss_and_drops_the_entry(self):
        query = build_chain()
        cache = SampleCache()
        entry = cache.entry(query, "ew")
        cache.publish(entry, make_block(4))
        query.relation("R").delete_rows([1])
        replacement = cache.entry(query, "ew")
        assert replacement is not entry
        assert not entry.alive
        assert cache.stats_dict()["stale_drops"] == 1
        assert replacement.epoch == epoch_vector(query)

    def test_read_returns_whole_blocks_from_cursor(self):
        query = build_chain()
        cache = SampleCache()
        entry = cache.entry(query, "ew")
        first, second = make_block(3), make_block(5)
        cache.publish(entry, first)
        blocks, cursor = cache.read(entry, 0)
        assert [len(b) for b in blocks] == [3] and cursor == 1
        cache.publish(entry, second)
        blocks, cursor = cache.read(entry, cursor)
        assert [len(b) for b in blocks] == [5] and cursor == 2
        assert cache.read(entry, cursor) == ([], 2)

    def test_publish_freezes_blocks(self):
        query = build_chain()
        cache = SampleCache()
        entry = cache.entry(query, "ew")
        block = make_block(4)
        cache.publish(entry, block)
        with pytest.raises(ValueError):
            block.positions["R"][0] = 7

    def test_lru_eviction_in_bytes(self):
        q_old, q_new = build_chain(name="old"), build_chain(name="new")
        block = make_block(64)
        cache = SampleCache(max_bytes=3 * block.nbytes)
        old_entry = cache.entry(q_old, "ew")
        cache.publish(old_entry, make_block(64))
        new_entry = cache.entry(q_new, "ew")
        cache.publish(new_entry, make_block(64))
        cache.publish(new_entry, make_block(64))
        # One more block busts the budget: the LRU entry (old) is evicted
        # wholesale, the hot entry survives.
        cache.publish(new_entry, make_block(64))
        assert not old_entry.alive
        assert new_entry.alive
        assert cache.bytes_used <= cache.max_bytes
        assert cache.stats_dict()["evictions"] == 1

    def test_dead_entry_swallows_reads_and_publishes(self):
        query = build_chain()
        cache = SampleCache()
        entry = cache.entry(query, "ew")
        cache.publish(entry, make_block(2))
        cache.drop_relation("R")
        assert cache.read(entry, 0) == ([], 0)
        cache.publish(entry, make_block(2))
        assert cache.stats_dict()["samples"] == 0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            SampleCache(max_bytes=0)


# ----------------------------------------------------------------- aggregation
class TestCachedAggregation:
    def test_cold_run_bit_identical_to_uncached(self):
        """Invariant 2: an empty cache changes nothing about the report."""
        query = build_chain()
        spec = AggregateSpec("sum", attribute="c")
        reference = OnlineAggregator(
            query, spec, method="exact-weight", seed=17
        ).until(0.1)
        cached = OnlineAggregator(
            query, spec, method="exact-weight", seed=17, cache=SampleCache()
        )
        report = cached.until(0.1)
        assert report.to_dict() == reference.to_dict()
        assert cached.cached_samples == 0 and cached.fresh_samples > 0

    def test_followup_served_entirely_from_cache(self):
        query = build_chain()
        cache = SampleCache()
        prime = OnlineAggregator(
            query, AggregateSpec("sum", attribute="c"),
            method="exact-weight", seed=5, cache=cache,
        )
        prime.until(0.1)
        followup = OnlineAggregator(
            query, AggregateSpec("avg", attribute="c"),
            method="exact-weight", seed=6, cache=cache,
        )
        report = followup.until(0.1)
        assert followup.cached_samples >= prime.fresh_samples
        assert followup.fresh_samples == 0
        assert report.max_relative_half_width() <= 0.1

    def test_groupby_and_filter_share_one_stream(self):
        """Group-bys and filtered aggregates re-consume the same draws."""
        query = build_chain()
        cache = SampleCache()
        prime = OnlineAggregator(
            query, AggregateSpec("count"),
            method="exact-weight", seed=5, cache=cache,
        )
        prime.until(0.15)
        stats_before = cache.stats_dict()
        variations = [
            AggregateSpec("sum", attribute="c", group_by="a"),
            AggregateSpec("count", where=lambda row: row["c"] >= 100.0),
        ]
        for i, spec in enumerate(variations):
            aggregator = OnlineAggregator(
                query, spec, method="exact-weight", seed=20 + i, cache=cache,
            )
            aggregator.until(0.9, min_accepted=8)
            assert aggregator.cached_samples >= stats_before["samples"]

    def test_cached_estimate_agrees_with_exact_answer(self):
        query = build_chain()
        truth = sum_truth(query)
        cache = SampleCache()
        spec = AggregateSpec("sum", attribute="c")
        OnlineAggregator(
            query, spec, method="exact-weight", seed=3, cache=cache
        ).until(0.05)
        cached = OnlineAggregator(
            query, spec, method="exact-weight", seed=4, cache=cache
        )
        report = cached.until(0.05)
        assert cached.cached_samples > 0
        estimate = report.estimates[()]
        assert math.isclose(estimate.estimate, truth, rel_tol=0.25)

    def test_mutation_restarts_without_stale_blocks(self):
        query = build_chain()
        cache = SampleCache()
        spec = AggregateSpec("sum", attribute="c")
        OnlineAggregator(
            query, spec, method="exact-weight", seed=8, cache=cache
        ).until(0.1)
        query.relation("S").delete_rows([0, 1])
        # The cached entry is now stale: the follow-up must match the
        # cache-disabled reference bit for bit (nothing cached is served).
        reference = OnlineAggregator(
            query, spec, method="exact-weight", seed=9
        ).until(0.1)
        cached = OnlineAggregator(
            query, spec, method="exact-weight", seed=9, cache=cache
        )
        report = cached.until(0.1)
        assert cached.cached_samples == 0
        assert report.to_dict() == reference.to_dict()

    def test_cache_rejects_unsupported_shapes(self):
        query = build_chain()
        with pytest.raises(ValueError, match="parallelism"):
            OnlineAggregator(
                query, AggregateSpec("count"), method="exact-weight",
                parallelism=2, cache=SampleCache(),
            )
        with pytest.raises(ValueError, match="shared-weight"):
            OnlineAggregator(
                query, AggregateSpec("count"), method="wander-join",
                cache=SampleCache(),
            )

    def test_cache_hit_ci_coverage(self):
        """Invariant 1: cache-hit answers keep nominal CI coverage.

        Every trial uses its *own* cache primed by an independent cold run —
        sharing one cache across trials would correlate them and turn the
        coverage fraction into a coin flip over one shared stream.  The
        measured run is served from cached blocks (asserted), so this pins
        the honesty of cache-hit intervals, the tentpole's hard invariant.
        """
        query = build_chain()
        truth = sum_truth(query)
        spec = AggregateSpec("sum", attribute="c")

        def trial(seed):
            cache = SampleCache()
            prime = OnlineAggregator(
                query, AggregateSpec("count"),
                method="exact-weight", seed=2 * seed, cache=cache,
            )
            prime.step(384)
            measured = OnlineAggregator(
                query, spec, method="exact-weight", seed=2 * seed + 1,
                cache=cache,
            )
            report = measured.step(256)
            assert measured.cached_samples > 0
            return report.overall

        assert_ci_coverage(trial, truth, trials=TRIALS, min_coverage=MIN_COVERAGE)


# --------------------------------------------------- mutation interleavings
@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["mutate_r", "mutate_s", "aggregate"]),
        min_size=1, max_size=6,
    )
)
def test_no_interleaving_serves_a_stale_epoch(ops):
    """Property (satellite): no mutate/aggregate sequence serves stale blocks.

    After every aggregate the cached run is checked against a cache-disabled
    reference with the same seed: when the cache holds no fresh-epoch entry
    the two must be *bit-identical* (nothing cached may be served), and when
    it does, the served entry's epoch must equal the live relation versions
    and the estimate must agree with the exact answer within a generous
    multiple of its own CI.
    """
    query = build_chain(rows=21, name="hyp_chain")
    cache = SampleCache()
    spec = AggregateSpec("sum", attribute="c")
    for index, op in enumerate(ops):
        if op in ("mutate_r", "mutate_s"):
            relation = query.relation("R" if op == "mutate_r" else "S")
            if len(relation) > 2:
                relation.delete_rows([0])
            continue
        entry = cache.peek(query, "ew")
        had_fresh = entry is not None and entry.samples > 0
        seed = 1000 + index
        reference = OnlineAggregator(
            query, spec, method="exact-weight", seed=seed
        ).until(0.5, min_accepted=8)
        cached = OnlineAggregator(
            query, spec, method="exact-weight", seed=seed, cache=cache
        )
        report = cached.until(0.5, min_accepted=8)
        if not had_fresh:
            assert cached.cached_samples == 0
            assert report.to_dict() == reference.to_dict()
        else:
            assert cached.cached_samples > 0
            assert cached._cache_entry.epoch == epoch_vector(query)
            truth = sum_truth(query)
            estimate = report.estimates[()]
            slack = 5 * estimate.half_width + 0.5 * abs(truth) + 1e-9
            assert abs(estimate.estimate - truth) <= slack


def test_cached_stream_slots():
    """The entry is a bookkeeping struct: no dict, no accidental attributes."""
    entry = CachedStream(("k",), (("R", 0),), frozenset({"R"}))
    with pytest.raises(AttributeError):
        entry.surprise = 1
