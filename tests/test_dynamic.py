"""Tests for the incremental update engine and the repro.dynamic layer.

Covers the epoch/staleness protocol end to end: relations mutate under live
samplers, the samplers detect the version change, patch their weights and
plans, and keep producing uniform samples over the *new* join result — on
chain, acyclic (star), and cyclic (triangle) joins — plus the streaming
scenario driver and the TPC-H refresh stream.
"""

import numpy as np
import pytest

from repro.core.online_sampler import OnlineUnionSampler
from repro.dynamic import (
    DeleteEvent,
    InsertEvent,
    StreamingScenario,
    TPCHRefreshStream,
    apply_batch,
    apply_event,
    build_order_stream_scenario,
)
from repro.dynamic.stream import UpdateBatch
from repro.joins.executor import exact_join_size, join_result_set
from repro.relational.relation import Relation
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import WanderJoin
from repro.sampling.weights import ExactWeightFunction, ExtendedOlkenWeightFunction

from tests.stat_helpers import assert_uniform


# ------------------------------------------------------------------ mutations
class TestRelationMutations:
    def test_delete_where_returns_count_and_keeps_density(self):
        rel = Relation("R", ["a", "b"], [(i, i % 3) for i in range(9)])
        removed = rel.delete_where(lambda row, schema: row[schema.position("b")] == 1)
        assert removed == 3
        assert len(rel) == 6
        assert sorted(rel.column("a")) == [0, 2, 3, 5, 6, 8]

    def test_update_where_changes_matching_rows(self):
        rel = Relation("R", ["a", "b"], [(1, 10), (2, 20), (3, 10)])
        changed = rel.update(
            lambda row, schema: row[schema.position("b")] == 10,
            {"b": lambda old: old + 5},
        )
        assert changed == 2
        assert rel.column("b") == [15, 20, 15]

    def test_delete_out_of_range_raises(self):
        rel = Relation("R", ["a"], [(1,)])
        with pytest.raises(IndexError):
            rel.delete_rows([5])

    def test_maintained_caches_match_rebuild_after_interleaving(self, stat_rng):
        rel = Relation("R", ["a", "b"], [(int(stat_rng.integers(0, 6)), i) for i in range(30)])
        rel.index_on("a"), rel.sorted_index_on_columns(["a"])
        rel.statistics_on("a"), rel.column_array("a")
        for _ in range(60):
            op = int(stat_rng.integers(0, 3))
            if op == 0:
                rel.append((int(stat_rng.integers(0, 6)), int(stat_rng.integers(0, 100))))
            elif op == 1 and len(rel):
                count = int(stat_rng.integers(1, 4))
                positions = stat_rng.choice(len(rel), size=min(count, len(rel)), replace=False)
                rel.delete_rows(positions.tolist())
            elif len(rel):
                rel.update_rows(
                    [int(stat_rng.integers(0, len(rel)))],
                    {"a": int(stat_rng.integers(0, 6))},
                )
        fresh = Relation("F", rel.schema, rel.rows)
        maintained, rebuilt = rel.index_on("a"), fresh.index_on("a")
        assert maintained.total_rows == rebuilt.total_rows
        assert maintained.max_degree == rebuilt.max_degree
        for value in rebuilt.values():
            assert sorted(maintained.positions(value)) == sorted(rebuilt.positions(value))
        assert rel.statistics_on("a").frequencies() == fresh.statistics_on("a").frequencies()
        assert rel.column_array("a").tolist() == fresh.column_array("a").tolist()


# ----------------------------------------------------------- weight staleness
class TestWeightRefresh:
    @pytest.mark.parametrize("factory", [ExactWeightFunction, ExtendedOlkenWeightFunction])
    def test_refresh_matches_fresh_build(self, chain_query, factory):
        weights = factory(chain_query)
        relation = chain_query.relation("S")
        relation.extend([(10, 500), (20, 600)])
        relation.delete_where(lambda row, schema: row[schema.position("c")] == 100)
        assert weights.stale
        assert weights.refresh()
        fresh = factory(chain_query)
        assert np.allclose(weights.root_weights(), fresh.root_weights())
        assert weights.total_weight == pytest.approx(fresh.total_weight)
        assert not weights.refresh()  # second call is a no-op

    def test_ew_total_tracks_exact_size_under_churn(self, chain_query):
        weights = ExactWeightFunction(chain_query)
        for relation_name, row in (("R", (9, 10)), ("T", (100, 11)), ("S", (20, 100))):
            chain_query.relation(relation_name).append(row)
            weights.refresh()
            assert weights.total_weight == pytest.approx(
                exact_join_size(chain_query, distinct=False)
            )


# ----------------------------------------------------- sampling under updates
class TestSamplingUnderUpdates:
    """Acceptance criterion: uniformity (via the shared harness) after an
    interleaved insert/delete sequence, on acyclic and cyclic joins."""

    @staticmethod
    def _churn_acyclic(query) -> None:
        center = query.relation("C")
        d = query.relation("D")
        e = query.relation("E")
        center.append((3, 7))            # new center row
        d.extend([(3, "d4"), (2, "d5"), (1, "d6")])
        e.extend([(7, "e4"), (7, "e5")])
        d.delete_where(lambda row, schema: row[schema.position("y")] == "d1")
        e.delete_where(lambda row, schema: row[schema.position("z")] == "e3")
        center.update(lambda row, schema: row[schema.position("k")] == 2, {"x": 5})

    @staticmethod
    def _churn_cyclic(query) -> None:
        r = query.relation("R")
        s = query.relation("S")
        t = query.relation("T")
        r.extend([(9, 2), (9, 3)])
        s.append((3, 4))
        t.extend([(4, 9), (5, 1)])
        r.delete_where(lambda row, schema: row[schema.position("a")] == 7)
        t.delete_where(lambda row, schema: row == (5, 9))

    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_acyclic_uniform_after_interleaved_updates(self, acyclic_query, weights):
        sampler = JoinSampler(acyclic_query, weights=weights, seed=101)
        sampler.sample_many(200)  # warm caches and buffer on the old epoch
        self._churn_acyclic(acyclic_query)
        population = sorted(join_result_set(acyclic_query))
        assert population
        draws = sampler.sample_many(1500)
        assert_uniform([d.value for d in draws], population)

    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_cyclic_uniform_after_interleaved_updates(self, cyclic_query, weights):
        sampler = JoinSampler(cyclic_query, weights=weights, seed=103)
        sampler.sample_many(100)
        self._churn_cyclic(cyclic_query)
        population = sorted(join_result_set(cyclic_query))
        assert population
        draws = sampler.sample_many(1200)
        assert_uniform([d.value for d in draws], population)

    def test_scalar_path_agrees_after_updates(self, acyclic_query):
        sampler = JoinSampler(acyclic_query, weights="ew", seed=107)
        sampler.try_sample()
        self._churn_acyclic(acyclic_query)
        population = join_result_set(acyclic_query)
        draws = [sampler.try_sample() for _ in range(800)]
        values = {d.value for d in draws if d is not None}
        assert values == population

    def test_stale_buffer_is_discarded(self, chain_query):
        sampler = JoinSampler(chain_query, weights="ew", seed=109, max_batch_size=64)
        sampler.sample_batch(10)  # leaves surplus accepted draws buffered
        assert sampler._block_buffer or sampler._draw_buffer
        chain_query.relation("S").delete_where(
            lambda row, schema: row[schema.position("b")] == 10
        )
        assert sampler.stale
        draws = sampler.sample_many(50)
        population = join_result_set(chain_query)
        assert {d.value for d in draws} <= population
        assert not sampler.stale

    def test_wander_join_tracks_updates(self, chain_query):
        walker = WanderJoin(chain_query, seed=113)
        walker.walks(200)
        chain_query.relation("S").append((20, 700))
        chain_query.relation("T").extend([(700, 12), (700, 13)])
        population = join_result_set(chain_query)
        for walk in walker.walks(600):
            if walk.success:
                assert walk.value in population
        estimate = walker.estimate_size(max_walks=4000)
        assert estimate.estimate == pytest.approx(len(population), rel=0.35)


# ------------------------------------------------------------ streams/scenario
class TestRefreshStream:
    def test_batches_are_deterministic(self):
        def stream_for(seed):
            tables = {"orders": _orders_fixture(), "lineitem": _lineitem_fixture()}
            return TPCHRefreshStream(tables, seed=seed, orders_per_batch=8)

        a = [b.events for b in stream_for(5).batches(3)]
        b = [b.events for b in stream_for(5).batches(3)]
        assert a == b

    def test_apply_event_routes_deletes_through_index(self):
        orders = _orders_fixture()
        tables = {"orders": orders, "lineitem": _lineitem_fixture()}
        deleted = apply_event(tables, DeleteEvent("orders", "orderkey", 2))
        assert deleted == 1
        assert 2 not in orders.column("orderkey")
        inserted = apply_event(
            tables, InsertEvent("orders", ((99, 1, "O", 10.0, 9000, "5-LOW"),))
        )
        assert inserted == 1 and 99 in orders.column("orderkey")

    def test_apply_batch_groups_deletions(self):
        tables = {"orders": _orders_fixture(), "lineitem": _lineitem_fixture()}
        version_before = tables["lineitem"].version
        batch = UpdateBatch(
            sequence=1,
            events=(
                DeleteEvent("lineitem", "orderkey", 1),
                DeleteEvent("lineitem", "orderkey", 2),
                DeleteEvent("orders", "orderkey", 1),
                DeleteEvent("orders", "orderkey", 2),
            ),
        )
        counts = apply_batch(tables, batch)
        # orderkey 1 carries 2 lineitems, orderkey 2 carries 3, plus 2 orders
        assert counts == {"inserted": 0, "deleted": 7}
        # all lineitem deletions applied as ONE delta (one version bump)
        assert tables["lineitem"].version == version_before + 1

    def test_stream_conserves_live_orderkeys(self):
        tables = {"orders": _orders_fixture(), "lineitem": _lineitem_fixture()}
        stream = TPCHRefreshStream(tables, seed=3, orders_per_batch=16)
        for batch in stream.batches(10):
            apply_batch(tables, batch)
        assert sorted(set(tables["orders"].column("orderkey"))) == sorted(
            stream._live_orderkeys
        )


class TestStreamingScenario:
    def test_scenario_runs_and_samples_stay_members(self):
        tables, query, stream = build_order_stream_scenario(
            scale_factor=0.0005, seed=21, orders_per_batch=12
        )
        scenario = StreamingScenario(
            tables,
            stream,
            {
                "join": JoinSampler(query, weights="ew", seed=1),
                "wander": WanderJoin(query, seed=2),
            },
            samples_per_epoch=40,
        )
        reports = scenario.run(4)
        assert [r.epoch for r in reports] == [1, 2, 3, 4]
        population = join_result_set(query)
        for value in reports[-1].samples["join"]:
            assert value in population
        for value in reports[-1].samples["wander"]:
            assert value in population

    def test_online_union_sampler_refresh(self, union_pair):
        sampler = OnlineUnionSampler(union_pair, seed=9, walks_per_join=100)
        sampler.sample(50)
        assert not sampler.refresh()  # nothing mutated: no-op
        union_pair[0].relation("S").append((10, 900))
        assert sampler.refresh()
        assert sampler._live_count == 0  # old-epoch bookkeeping dropped
        result = sampler.sample(80)
        universe = set()
        for query in union_pair:
            universe |= join_result_set(query)
        assert {s.value for s in result.samples} <= universe
        assert (1, 900) in universe  # the inserted row joined into the union

    def test_rejects_unknown_sampler_type(self):
        tables, query, stream = build_order_stream_scenario(
            scale_factor=0.0005, seed=22, orders_per_batch=4
        )
        scenario = StreamingScenario(tables, stream, {"bad": object()}, samples_per_epoch=4)
        with pytest.raises(TypeError):
            scenario.run_epoch()


# ---------------------------------------------------------------------- utils
def _orders_fixture() -> Relation:
    from repro.tpch.schema import ORDERS_SCHEMA

    rows = [
        (key, (key % 3) + 1, "O", 100.0 * key, 9000 + key, "5-LOW")
        for key in range(1, 9)
    ]
    return Relation("orders", ORDERS_SCHEMA, rows)


def _lineitem_fixture() -> Relation:
    from repro.tpch.schema import LINEITEM_SCHEMA

    rows = []
    for orderkey in range(1, 9):
        for line in range(1, (orderkey % 3) + 2):
            rows.append((orderkey, line, 1, line, 5, 50.0, 0.05, 9100 + orderkey))
    return Relation("lineitem", LINEITEM_SCHEMA, rows)
