"""Tests for repro.core.union_sampler (disjoint, Bernoulli, set-union)."""

import pytest

from repro.analysis.uniformity import chi_square_uniformity
from repro.core.union_sampler import (
    BernoulliUnionSampler,
    DisjointUnionSampler,
    SetUnionSampler,
)
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.joins.executor import join_result_set


@pytest.fixture
def exact_params(union_triple):
    return FullJoinUnionEstimator(union_triple).estimate()


def union_values(queries):
    union = set()
    for query in queries:
        union |= join_result_set(query)
    return sorted(union)


class TestDisjointUnionSampler:
    def test_sample_count_and_membership(self, union_triple, exact_params):
        sampler = DisjointUnionSampler(union_triple, exact_params, seed=1)
        result = sampler.sample(200)
        assert len(result) == 200
        universe = set(union_values(union_triple))
        assert all(s.value in universe for s in result.samples)

    def test_join_selection_proportional_to_sizes(self, union_triple, exact_params):
        sampler = DisjointUnionSampler(union_triple, exact_params, seed=2)
        result = sampler.sample(1500)
        sources = result.sources()
        total = sum(sources.values())
        for query in union_triple:
            expected = exact_params.join_sizes[query.name] / exact_params.disjoint_union_size()
            assert sources[query.name] / total == pytest.approx(expected, abs=0.06)

    def test_disjoint_union_weights_values_by_multiplicity(self, union_triple, exact_params):
        """A value present in k joins must appear ~k times as often as a value
        present in one join (that is what distinguishes disjoint from set union)."""
        sampler = DisjointUnionSampler(union_triple, exact_params, seed=3)
        values = [s.value for s in sampler.sample(4000).samples]
        in_all_three = values.count((1, 100))
        exclusive = values.count((3, 400))
        assert in_all_three > 1.8 * exclusive

    def test_zero_samples(self, union_triple, exact_params):
        assert len(DisjointUnionSampler(union_triple, exact_params, seed=4).sample(0)) == 0

    def test_negative_count_rejected(self, union_triple, exact_params):
        with pytest.raises(ValueError):
            DisjointUnionSampler(union_triple, exact_params, seed=4).sample(-1)


class TestBernoulliUnionSampler:
    def test_uniform_over_set_union(self, union_triple, exact_params):
        sampler = BernoulliUnionSampler(union_triple, exact_params, seed=5)
        result = sampler.sample(3000)
        check = chi_square_uniformity([s.value for s in result.samples],
                                      union_values(union_triple))
        assert not check.rejects_uniformity(alpha=0.001)

    def test_rejects_duplicates_from_later_joins(self, union_triple, exact_params):
        sampler = BernoulliUnionSampler(union_triple, exact_params, seed=6)
        result = sampler.sample(500)
        # (1, 100) is in every join; it must only ever be attributed to J1.
        for sample in result.samples:
            if sample.value == (1, 100):
                assert sample.source_join == "J1"
        assert result.stats.rejected_duplicate > 0

    def test_accepts_estimated_parameters(self, union_triple):
        estimator = HistogramUnionEstimator(union_triple, join_size_method="ew")
        sampler = BernoulliUnionSampler(union_triple, estimator, seed=7)
        assert len(sampler.sample(100)) == 100


class TestSetUnionSamplerStrict:
    def test_uniform_over_set_union(self, union_triple, exact_params):
        sampler = SetUnionSampler(union_triple, exact_params, seed=8, mode="strict")
        result = sampler.sample(3000)
        check = chi_square_uniformity([s.value for s in result.samples],
                                      union_values(union_triple))
        assert not check.rejects_uniformity(alpha=0.001)

    def test_every_value_attributed_to_its_cover_owner(self, union_triple, exact_params):
        sampler = SetUnionSampler(union_triple, exact_params, seed=9, mode="strict")
        result = sampler.sample(800)
        # Cover owners: values in J1 belong to J1; (3,400) to J2; (5,500) to J3.
        for sample in result.samples:
            if sample.value in join_result_set(union_triple[0]):
                assert sample.source_join == "J1"
        assert any(s.source_join == "J2" for s in result.samples)
        assert any(s.source_join == "J3" for s in result.samples)


class TestSetUnionSamplerRecord:
    def test_samples_come_from_the_union(self, union_triple, exact_params):
        sampler = SetUnionSampler(union_triple, exact_params, seed=10, mode="record")
        result = sampler.sample(500)
        universe = set(union_values(union_triple))
        assert len(result) == 500
        assert all(s.value in universe for s in result.samples)

    def test_revisions_reassign_ownership_to_earlier_joins(self, union_triple, exact_params):
        # Fixed stream chosen to exercise the revision path (revisions are
        # rare on this tiny workload; not every seed produces one).
        sampler = SetUnionSampler(union_triple, exact_params, seed=16, mode="record")
        result = sampler.sample(1500)
        assert sampler.stats.revisions > 0
        # After enough sampling, overlap values must end up owned by the first
        # join that contains them (the record converges to the cover).
        final_owner = {}
        for sample in result.samples:
            final_owner[sample.value] = sample.source_join
        j1_values = join_result_set(union_triple[0])
        owned_elsewhere = [
            v for v, owner in final_owner.items() if v in j1_values and owner != "J1"
        ]
        # Revision can only leave a non-J1 owner for values whose J1 copy was
        # never drawn; with 1500 draws over 5 values that is vanishingly rare.
        assert not owned_elsewhere

    def test_rejection_and_acceptance_counters_consistent(self, union_triple, exact_params):
        sampler = SetUnionSampler(union_triple, exact_params, seed=12, mode="record")
        result = sampler.sample(300)
        stats = result.stats
        assert stats.iterations == stats.accepted + stats.rejected_duplicate
        assert stats.accepted >= 300

    def test_invalid_mode_rejected(self, union_triple, exact_params):
        with pytest.raises(ValueError):
            SetUnionSampler(union_triple, exact_params, mode="loose")

    def test_runaway_rejection_raises(self, union_pair):
        """With absurd parameters (union much larger than reality) the sampler
        must give up rather than loop forever."""
        from repro.estimation.parameters import UnionParameters

        bogus = UnionParameters(
            join_order=["J1", "J2"],
            join_sizes={"J1": 3.0, "J2": 3.0},
            cover_sizes={"J1": 0.0, "J2": 0.0},
            union_size=4.0,
        )
        sampler = SetUnionSampler(
            union_pair, bogus, seed=13, mode="record", max_iterations_factor=2
        )
        # Cover sizes of zero fall back to uniform selection, so sampling still
        # works; the guard only trips when nothing can ever be accepted.
        result = sampler.sample(5)
        assert len(result) == 5


class TestTimeAccounting:
    def test_breakdown_has_all_phases(self, union_triple, exact_params):
        sampler = SetUnionSampler(union_triple, exact_params, seed=14, mode="record")
        result = sampler.sample(200)
        breakdown = result.stats.breakdown()
        assert set(breakdown) == {"estimation", "accepted", "rejected"}
        assert breakdown["accepted"] > 0

    def test_warmup_time_recorded_when_estimator_passed(self, union_triple):
        estimator = FullJoinUnionEstimator(union_triple)
        sampler = SetUnionSampler(union_triple, estimator, seed=15)
        assert sampler.stats.warmup_seconds > 0
