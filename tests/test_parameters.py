"""Tests for repro.estimation.parameters (UnionParameters)."""

import pytest

from repro.estimation.parameters import UnionParameters


def make_parameters(**overrides):
    defaults = dict(
        join_order=["J1", "J2"],
        join_sizes={"J1": 6.0, "J2": 4.0},
        cover_sizes={"J1": 6.0, "J2": 2.0},
        union_size=8.0,
        overlaps={frozenset(["J1", "J2"]): 2.0},
        method="test",
    )
    defaults.update(overrides)
    return UnionParameters(**defaults)


class TestValidation:
    def test_missing_join_size_rejected(self):
        with pytest.raises(ValueError, match="join_sizes"):
            make_parameters(join_sizes={"J1": 6.0})

    def test_missing_cover_size_rejected(self):
        with pytest.raises(ValueError, match="cover_sizes"):
            make_parameters(cover_sizes={"J1": 6.0})

    def test_negative_union_rejected(self):
        with pytest.raises(ValueError):
            make_parameters(union_size=-1.0)


class TestViews:
    def test_basic_lookups(self):
        params = make_parameters()
        assert params.join_size("J2") == 4.0
        assert params.cover_size("J2") == 2.0
        assert params.overlap(["J1", "J2"]) == 2.0
        assert params.overlap(["J1"]) == 6.0
        assert params.overlap(["J2", "J1"]) == 2.0  # order-insensitive

    def test_unknown_overlap_defaults_to_zero(self):
        params = make_parameters()
        assert params.overlap(["J1", "J3"]) == 0.0

    def test_join_to_union_ratio(self):
        params = make_parameters()
        assert params.join_to_union_ratio("J1") == pytest.approx(0.75)
        zero = make_parameters(union_size=0.0)
        assert zero.join_to_union_ratio("J1") == 0.0

    def test_disjoint_union_size(self):
        assert make_parameters().disjoint_union_size() == 10.0


class TestSelectionProbabilities:
    def test_cover_based_probabilities(self):
        probs = make_parameters().selection_probabilities(use_cover=True)
        assert probs["J1"] == pytest.approx(0.75)
        assert probs["J2"] == pytest.approx(0.25)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_size_based_probabilities(self):
        probs = make_parameters().selection_probabilities(use_cover=False)
        assert probs["J1"] == pytest.approx(0.6)

    def test_degenerate_all_zero_weights_fall_back_to_uniform(self):
        params = make_parameters(cover_sizes={"J1": 0.0, "J2": 0.0})
        probs = params.selection_probabilities(use_cover=True)
        assert probs["J1"] == pytest.approx(0.5)
        assert probs["J2"] == pytest.approx(0.5)

    def test_negative_weights_clamped(self):
        params = make_parameters(cover_sizes={"J1": 5.0, "J2": -3.0})
        probs = params.selection_probabilities(use_cover=True)
        assert probs["J2"] == 0.0
        assert probs["J1"] == pytest.approx(1.0)


class TestDiagnostics:
    def test_ratio_errors_against_exact(self):
        estimated = make_parameters(union_size=10.0)
        exact = make_parameters()
        errors = estimated.ratio_errors(exact)
        assert errors["J1"] == pytest.approx(abs(6.0 / 10.0 - 6.0 / 8.0))

    def test_describe_contains_key_fields(self):
        summary = make_parameters().describe()
        assert summary["method"] == "test"
        assert summary["union_size"] == 8.0
        assert summary["disjoint_union_size"] == 10.0
