"""Known-bad fixture: merge-law violations in a registered accumulator."""


class AggregateAccumulator:
    def __init__(self):
        self.attempts = 0
        self.total = 0.0
        self._weights = []

    def merge(self, other):
        self.attempts += other.attempts
        self.total += other.total

    def estimate(self):
        return sum(self._weights)
