"""Known-bad fixture: one violation of each RNG rule, at pinned lines."""

import random

import numpy as np


def make_sampler(data, *, seed=None):
    return (data, seed)


def make_estimator(data, *, seed=None):
    return (data, seed)


def build(data):
    rng = np.random.default_rng(7)
    np.random.seed(7)
    jitter = random.random()
    sampler = make_sampler(data, seed=11)
    estimator = make_estimator(data, seed=11)
    return (rng, jitter, sampler, estimator)
