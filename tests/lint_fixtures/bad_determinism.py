"""Known-bad fixture: nondeterminism inside a determinism-critical function."""

import time


def shape_key(queries):
    stamp = time.time()
    names = {query.name for query in queries}
    parts = []
    for name in names:
        parts.append(name)
    return (stamp, tuple(parts))
