"""Fixture for the suppression contract: justified, standalone, and bare."""

import random  # repro-lint: disable=RNG003 -- fixture: justified inline suppression


def draw():
    # repro-lint: disable=RNG003 -- fixture: standalone directive covers next line
    return random.random()


def bad_draw():
    return random.random()  # repro-lint: disable=RNG003
