"""Known-bad fixture: leaked admission ticket and unmanaged executor."""

from concurrent.futures import ThreadPoolExecutor


def handle_request(controller, work):
    ticket = controller.admit(1.0)
    return work()


def run_parallel(tasks):
    pool = ThreadPoolExecutor(max_workers=2)
    return [pool.submit(task) for task in tasks]
