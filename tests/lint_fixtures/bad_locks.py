"""Known-bad fixture: guarded SampleCache state touched without the lock."""

import threading


class SampleCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self.hits = 0

    def get(self, key):
        if key in self._entries:
            self.hits += 1
            return self._entries[key]
        return None

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
