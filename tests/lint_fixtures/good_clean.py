"""Known-good fixture: every contract honoured — the linter must stay silent.

Mirrors the registered classes by *name* (that is how contracts bind) with
minimal bodies that do everything right: locked access to guarded state,
refresh-before-serve, fsum-only accumulation, sorted set iteration, tickets
released in ``finally``, executors in ``with`` blocks.
"""

import math
import threading
from concurrent.futures import ThreadPoolExecutor


class SampleCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self.hits = 0

    def get(self, key):
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
            return None

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._evict()

    def _evict(self):
        # Reached only from lock-holding call sites: inherits the context.
        while len(self._entries) > 4:
            self._entries.pop(next(iter(self._entries)))


class AggregateAccumulator:
    def __init__(self):
        self.attempts = 0
        self.accepted = 0
        self._weights = []

    def extend(self, weights):
        self.attempts += len(weights)
        self.accepted += len(weights)
        self._weights.extend(weights)

    def estimate(self):
        return math.fsum(self._weights)


class JoinSampler:
    def __init__(self):
        self._root_weights = [1.0, 2.0]

    def refresh(self):
        return False

    def sample(self, count):
        self.refresh()
        return self._root_weights[:count]

    def sample_many(self, count):
        # Delegating to another checked entry point counts as refreshing.
        return self.sample(count)


def shape_key(queries):
    names = {query.name for query in queries}
    return tuple(sorted(names))


def handle_request(controller, work):
    ticket = controller.admit(1.0)
    try:
        return work()
    finally:
        ticket.release()


def probe(controller):
    ticket = controller.admit(0.0)
    ticket.release()
    return True


def run_parallel(tasks):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return [future.result() for future in map(pool.submit, tasks)]
