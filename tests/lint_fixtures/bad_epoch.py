"""Known-bad fixture: epoch-protocol violations on a registered class name."""


class JoinSampler:
    def __init__(self):
        self._root_weights = [1.0]
        self._epoch = 0

    def refresh(self):
        self._epoch += 1
        return False

    def sample(self, count):
        return self._root_weights[:count]

    def sample_batch(self, count):
        out = list(self._root_weights)
        self.refresh()
        return out[:count]
