"""Tests for repro.core.result (SamplingStats and SampleResult)."""

import pytest

from repro.core.result import SampleResult, SamplingStats, UnionSample
from repro.estimation.parameters import UnionParameters


def make_parameters():
    return UnionParameters(
        join_order=["J1", "J2"],
        join_sizes={"J1": 5.0, "J2": 5.0},
        cover_sizes={"J1": 5.0, "J2": 3.0},
        union_size=8.0,
    )


class TestSamplingStats:
    def test_record_draw_and_totals(self):
        stats = SamplingStats()
        stats.record_draw("J1")
        stats.record_draw("J1")
        stats.record_draw("J2")
        assert stats.draws_per_join == {"J1": 2, "J2": 1}
        assert stats.total_draws == 3

    def test_acceptance_rate(self):
        stats = SamplingStats(iterations=10, accepted=4)
        assert stats.acceptance_rate == 0.4
        assert SamplingStats().acceptance_rate == 0.0

    def test_breakdown_phases(self):
        stats = SamplingStats()
        stats.timer.add("warmup", 1.0)
        stats.timer.add("estimation_update", 0.5)
        stats.timer.add("accepted", 2.0)
        stats.timer.add("rejected", 0.25)
        breakdown = stats.breakdown()
        assert breakdown["estimation"] == pytest.approx(1.5)
        assert breakdown["accepted"] == pytest.approx(2.0)
        assert breakdown["rejected"] == pytest.approx(0.25)
        assert stats.warmup_seconds == 1.0
        assert stats.sampling_seconds == pytest.approx(2.25)
        assert stats.total_seconds == pytest.approx(3.75)

    def test_time_per_accepted_phases(self):
        stats = SamplingStats(accepted=10, reused_accepted=4)
        stats.timer.add("accepted", 2.0)
        stats.timer.add("reuse_accepted", 0.4)
        assert stats.time_per_accepted() == pytest.approx(0.2)
        assert stats.time_per_accepted("reuse") == pytest.approx(0.1)
        assert stats.time_per_accepted("regular") == pytest.approx(1.6 / 6)

    def test_time_per_accepted_zero_denominator(self):
        assert SamplingStats().time_per_accepted() == 0.0
        assert SamplingStats().time_per_accepted("reuse") == 0.0

    def test_time_per_accepted_invalid_phase(self):
        with pytest.raises(ValueError):
            SamplingStats().time_per_accepted("warp")

    def test_describe_round_trip(self):
        stats = SamplingStats(iterations=3, accepted=2, rejected_duplicate=1)
        summary = stats.describe()
        assert summary["iterations"] == 3
        assert summary["accepted"] == 2


class TestSampleResult:
    def _result(self):
        samples = [
            UnionSample((1, "a"), "J1", 1),
            UnionSample((2, "b"), "J2", 2),
            UnionSample((1, "a"), "J1", 3),
        ]
        return SampleResult(samples, make_parameters(), SamplingStats(), algorithm="test")

    def test_values_and_distinct(self):
        result = self._result()
        assert result.values() == [(1, "a"), (2, "b"), (1, "a")]
        assert result.distinct_values() == [(1, "a"), (2, "b")]
        assert len(result) == 3

    def test_sources(self):
        assert self._result().sources() == {"J1": 2, "J2": 1}

    def test_describe(self):
        summary = self._result().describe()
        assert summary["algorithm"] == "test"
        assert summary["samples"] == 3
        assert "parameters" in summary and "stats" in summary
