"""End-to-end integration tests on the TPC-H workloads.

These tests exercise the full pipeline the paper's experiments use: build a
workload, estimate parameters with each warm-up method, sample the union with
each algorithm, and validate the samples against the exact (FullJoinUnion)
ground truth.
"""

import pytest

from repro.analysis.errors import mean_ratio_error
from repro.analysis.uniformity import chi_square_uniformity
from repro.core.online_sampler import OnlineUnionSampler
from repro.core.union_sampler import (
    BernoulliUnionSampler,
    DisjointUnionSampler,
    SetUnionSampler,
)
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.random_walk import RandomWalkUnionEstimator
from repro.joins.executor import join_result_set


@pytest.fixture(scope="module", params=["uq1", "uq2", "uq3"])
def workload(request, uq1_small, uq2_small, uq3_small):
    return {"uq1": uq1_small, "uq2": uq2_small, "uq3": uq3_small}[request.param]


@pytest.fixture(scope="module")
def exact(workload):
    return FullJoinUnionEstimator(workload.queries).estimate()


@pytest.fixture(scope="module")
def union_universe(workload):
    universe = set()
    for query in workload.queries:
        universe |= join_result_set(query)
    return universe


class TestEstimatorsAgainstGroundTruth:
    def test_histogram_estimator_bounds_overlaps(self, workload, exact):
        estimator = HistogramUnionEstimator(workload.queries, join_size_method="ew")
        params = estimator.estimate()
        # EW join sizes are exact, so join sizes must match the ground truth.
        for name, size in exact.join_sizes.items():
            assert params.join_sizes[name] == pytest.approx(size)
        # Histogram overlaps are upper bounds, so the union estimate is a lower
        # bound (never above the exact union by more than rounding).
        assert params.union_size <= exact.union_size * 1.001

    def test_random_walk_estimator_accuracy(self, workload, exact):
        estimator = RandomWalkUnionEstimator(workload.queries, walks_per_join=800, seed=21)
        params = estimator.estimate()
        error = mean_ratio_error(params, exact)
        assert error < 0.25, f"random-walk ratio error too large: {error}"

    def test_histogram_eo_sizes_dominate_exact(self, workload, exact):
        estimator = HistogramUnionEstimator(workload.queries, join_size_method="eo")
        for query in workload.queries:
            assert estimator.join_size(query) >= exact.join_sizes[query.name] * 0.999


class TestSamplersProduceValidSamples:
    @pytest.mark.parametrize(
        "sampler_factory",
        [
            lambda q, p: DisjointUnionSampler(q, p, seed=31),
            lambda q, p: BernoulliUnionSampler(q, p, seed=32),
            lambda q, p: SetUnionSampler(q, p, seed=33, mode="record"),
            lambda q, p: SetUnionSampler(q, p, seed=34, mode="strict"),
        ],
        ids=["disjoint", "bernoulli", "set-union-record", "set-union-strict"],
    )
    def test_samples_within_union(self, workload, exact, union_universe, sampler_factory):
        sampler = sampler_factory(workload.queries, exact)
        result = sampler.sample(120)
        assert len(result) == 120
        assert all(s.value in union_universe for s in result.samples)

    def test_online_sampler_within_union(self, workload, union_universe):
        sampler = OnlineUnionSampler(workload.queries, seed=35, walks_per_join=200)
        result = sampler.sample(120)
        assert len(result) == 120
        assert all(s.value in union_universe for s in result.samples)

    def test_estimated_parameters_still_produce_valid_samples(self, workload, union_universe):
        estimator = HistogramUnionEstimator(workload.queries, join_size_method="ew")
        sampler = SetUnionSampler(workload.queries, estimator, seed=36, mode="record")
        result = sampler.sample(100)
        assert all(s.value in union_universe for s in result.samples)


class TestUniformityOnSmallUnion:
    def test_strict_set_union_sampler_is_uniform(self, uq2_small):
        """UQ2 at tiny scale has a small enough universe for a chi-square test."""
        exact = FullJoinUnionEstimator(uq2_small.queries).estimate()
        universe = set()
        for query in uq2_small.queries:
            universe |= join_result_set(query)
        if len(universe) > 400:
            pytest.skip("universe too large for a cheap uniformity test")
        sampler = SetUnionSampler(uq2_small.queries, exact, seed=41, mode="strict")
        count = max(6 * len(universe), 2000)
        result = sampler.sample(count)
        check = chi_square_uniformity([s.value for s in result.samples], sorted(universe))
        assert not check.rejects_uniformity(alpha=0.001)
