"""Tests for repro.relational.predicates."""

import pytest

from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    TruePredicate,
    selectivity,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema


SCHEMA = Schema(["age", "city"])
ROW = (30, "rome")


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("==", 30, True),
            ("!=", 30, False),
            ("<", 40, True),
            ("<=", 30, True),
            (">", 30, False),
            (">=", 31, False),
        ],
    )
    def test_operators(self, op, value, expected):
        assert Comparison("age", op, value).evaluate(ROW, SCHEMA) is expected

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("age", "~", 1)

    def test_attributes(self):
        assert Comparison("age", "<", 5).attributes() == ("age",)


class TestOtherPredicates:
    def test_in_set(self):
        assert InSet("city", ["rome", "oslo"]).evaluate(ROW, SCHEMA)
        assert not InSet("city", ["lima"]).evaluate(ROW, SCHEMA)

    def test_between_inclusive(self):
        assert Between("age", 30, 40).evaluate(ROW, SCHEMA)
        assert Between("age", 20, 30).evaluate(ROW, SCHEMA)
        assert not Between("age", 31, 40).evaluate(ROW, SCHEMA)

    def test_true_predicate(self):
        assert TruePredicate().evaluate(ROW, SCHEMA)
        assert TruePredicate().attributes() == ()

    def test_not(self):
        assert Not(Comparison("age", ">", 100)).evaluate(ROW, SCHEMA)


class TestComposition:
    def test_and_or_via_operators(self):
        p = Comparison("age", ">=", 18) & InSet("city", ["rome"])
        q = Comparison("age", ">", 100) | InSet("city", ["rome"])
        assert p.evaluate(ROW, SCHEMA)
        assert q.evaluate(ROW, SCHEMA)
        assert (~p).evaluate(ROW, SCHEMA) is False

    def test_composite_attributes_deduplicated(self):
        p = And([Comparison("age", ">", 1), Comparison("age", "<", 99), InSet("city", ["x"])])
        assert p.attributes() == ("age", "city")

    def test_or_false_when_all_children_false(self):
        p = Or([Comparison("age", ">", 100), Comparison("city", "==", "lima")])
        assert not p.evaluate(ROW, SCHEMA)


class TestSelectivity:
    def test_selectivity_fraction(self):
        rel = Relation("r", ["age", "city"], [(10, "a"), (20, "a"), (30, "b"), (40, "b")])
        assert selectivity(Comparison("age", ">=", 30), rel) == 0.5

    def test_selectivity_empty_relation(self):
        rel = Relation("r", ["age", "city"], [])
        assert selectivity(TruePredicate(), rel) == 0.0
