"""Property-based tests (hypothesis) on core data structures and invariants.

These tests generate random relations, random overlapping set systems, and
random two-hop joins, and check the library's structural invariants against
brute-force computations:

* hash indexes and column statistics agree with naive counting;
* the k-overlap calculus (Theorem 3 + Eq. 1) reproduces exact union sizes for
  arbitrary set systems, and cover sizes always sum to the union size;
* Olken / exact-weight totals bound / equal brute-force join sizes;
* the membership prober agrees with the executed join on every candidate value.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.estimation.union_size import (
    compute_all_overlaps,
    compute_k_overlaps,
    cover_sizes_from_overlaps,
    union_size_from_k_overlaps,
)
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.executor import exact_join_size, join_result_set
from repro.joins.membership import JoinMembershipProber
from repro.joins.query import JoinQuery
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.statistics import ColumnStatistics
from repro.sampling.olken import olken_upper_bound
from repro.sampling.weights import ExactWeightFunction, ExtendedOlkenWeightFunction


# --------------------------------------------------------------------- strategies
small_values = st.integers(min_value=0, max_value=6)
value_lists = st.lists(small_values, min_size=0, max_size=40)

set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), max_size=10),
    min_size=1,
    max_size=5,
)


def two_relation_queries():
    """Random R(a, b) ⋈ S(b, c) joins with small value domains."""
    rows_r = st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 4)), min_size=0, max_size=15
    )
    rows_s = st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 8)), min_size=0, max_size=15
    )
    return st.tuples(rows_r, rows_s).map(_build_two_relation_query)


def _build_two_relation_query(rows):
    rows_r, rows_s = rows
    r = Relation("R", ["a", "b"], rows_r)
    s = Relation("S", ["b", "c"], rows_s)
    return JoinQuery(
        "hyp",
        [r, s],
        [JoinCondition("R", "b", "S", "b")],
        [
            OutputAttribute.direct("R", "a"),
            OutputAttribute.direct("R", "b"),
            OutputAttribute.direct("S", "c"),
        ],
    )


# ------------------------------------------------------------------------- indexes
class TestIndexAndStatisticsProperties:
    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_hash_index_matches_naive_counts(self, values):
        index = HashIndex.build(values, "a")
        counter = Counter(values)
        for value, count in counter.items():
            assert index.degree(value) == count
            assert [values[p] for p in index.positions(value)] == [value] * count
        assert index.total_rows == len(values)
        assert index.max_degree == (max(counter.values()) if counter else 0)

    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_column_statistics_match_naive_counts(self, values):
        stats = ColumnStatistics.from_values("a", values)
        counter = Counter(values)
        assert stats.row_count == len(values)
        assert stats.distinct_count == len(counter)
        for value, count in counter.items():
            assert stats.degree(value) == count
        if counter:
            assert stats.max_degree == max(counter.values())
            assert stats.average_degree == pytest.approx(len(values) / len(counter))


# --------------------------------------------------------------------- set calculus
class TestUnionCalculusProperties:
    @given(sets=set_systems)
    @settings(max_examples=150, deadline=None)
    def test_theorem3_union_size_matches_brute_force(self, sets):
        names = [f"J{i}" for i in range(len(sets))]
        by_name = dict(zip(names, sets))

        def overlap_of(subset):
            members = [by_name[name] for name in subset]
            return float(len(frozenset.intersection(*members)))

        overlaps = compute_all_overlaps(names, overlap_of)
        areas = compute_k_overlaps(names, overlaps)
        union = union_size_from_k_overlaps(areas)
        expected = len(frozenset.union(*sets)) if sets else 0
        assert union == pytest.approx(expected)

    @given(sets=set_systems)
    @settings(max_examples=150, deadline=None)
    def test_k_overlaps_partition_each_set(self, sets):
        names = [f"J{i}" for i in range(len(sets))]
        by_name = dict(zip(names, sets))

        def overlap_of(subset):
            members = [by_name[name] for name in subset]
            return float(len(frozenset.intersection(*members)))

        overlaps = compute_all_overlaps(names, overlap_of)
        areas = compute_k_overlaps(names, overlaps)
        for name in names:
            assert sum(areas[name].values()) == pytest.approx(len(by_name[name]))
            assert all(v >= 0 for v in areas[name].values())

    @given(sets=set_systems)
    @settings(max_examples=150, deadline=None)
    def test_cover_sizes_sum_to_union_and_match_sequential_difference(self, sets):
        names = [f"J{i}" for i in range(len(sets))]
        by_name = dict(zip(names, sets))

        def overlap_of(subset):
            members = [by_name[name] for name in subset]
            return float(len(frozenset.intersection(*members)))

        overlaps = compute_all_overlaps(names, overlap_of)
        covers = cover_sizes_from_overlaps(names, overlaps)
        union = frozenset.union(*sets)
        assert sum(covers.values()) == pytest.approx(len(union))
        seen: set = set()
        for name in names:
            expected = len(set(by_name[name]) - seen)
            assert covers[name] == pytest.approx(expected)
            seen |= set(by_name[name])


# -------------------------------------------------------------------------- joins
class TestJoinProperties:
    @given(query=two_relation_queries())
    @settings(max_examples=60, deadline=None)
    def test_olken_bound_dominates_exact_size(self, query):
        assert olken_upper_bound(query) >= exact_join_size(query, distinct=False)

    @given(query=two_relation_queries())
    @settings(max_examples=60, deadline=None)
    def test_exact_weight_total_equals_brute_force_size(self, query):
        ew = ExactWeightFunction(query)
        assert ew.total_weight == exact_join_size(query, distinct=False)

    @given(query=two_relation_queries())
    @settings(max_examples=60, deadline=None)
    def test_eo_total_dominates_ew_total(self, query):
        eo = ExtendedOlkenWeightFunction(query)
        ew = ExactWeightFunction(query)
        assert eo.total_weight >= ew.total_weight

    @given(query=two_relation_queries())
    @settings(max_examples=40, deadline=None)
    def test_membership_prober_agrees_with_executor(self, query):
        results = join_result_set(query)
        prober = JoinMembershipProber(query)
        for value in results:
            assert prober.contains(value)
        # Values just outside the join (perturbed c) must be rejected.
        for value in list(results)[:10]:
            perturbed = (value[0], value[1], value[2] + 100)
            assert not prober.contains(perturbed)
