"""Property-based tests (hypothesis) on core data structures and invariants.

These tests generate random relations, random overlapping set systems, and
random two-hop joins, and check the library's structural invariants against
brute-force computations:

* hash indexes and column statistics agree with naive counting;
* the k-overlap calculus (Theorem 3 + Eq. 1) reproduces exact union sizes for
  arbitrary set systems, and cover sizes always sum to the union size;
* Olken / exact-weight totals bound / equal brute-force join sizes;
* the membership prober agrees with the executed join on every candidate value.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.estimation.union_size import (
    compute_all_overlaps,
    compute_k_overlaps,
    cover_sizes_from_overlaps,
    union_size_from_k_overlaps,
)
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.executor import exact_join_size, join_result_set
from repro.joins.membership import JoinMembershipProber
from repro.joins.query import JoinQuery
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.statistics import ColumnStatistics
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.olken import olken_upper_bound
from repro.sampling.weights import ExactWeightFunction, ExtendedOlkenWeightFunction


# --------------------------------------------------------------------- strategies
small_values = st.integers(min_value=0, max_value=6)
value_lists = st.lists(small_values, min_size=0, max_size=40)

set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), max_size=10),
    min_size=1,
    max_size=5,
)


def two_relation_queries():
    """Random R(a, b) ⋈ S(b, c) joins with small value domains."""
    rows_r = st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 4)), min_size=0, max_size=15
    )
    rows_s = st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 8)), min_size=0, max_size=15
    )
    return st.tuples(rows_r, rows_s).map(_build_two_relation_query)


def _build_two_relation_query(rows):
    rows_r, rows_s = rows
    r = Relation("R", ["a", "b"], rows_r)
    s = Relation("S", ["b", "c"], rows_s)
    return JoinQuery(
        "hyp",
        [r, s],
        [JoinCondition("R", "b", "S", "b")],
        [
            OutputAttribute.direct("R", "a"),
            OutputAttribute.direct("R", "b"),
            OutputAttribute.direct("S", "c"),
        ],
    )


# ------------------------------------------------------------------------- indexes
class TestIndexAndStatisticsProperties:
    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_hash_index_matches_naive_counts(self, values):
        index = HashIndex.build(values, "a")
        counter = Counter(values)
        for value, count in counter.items():
            assert index.degree(value) == count
            assert [values[p] for p in index.positions(value)] == [value] * count
        assert index.total_rows == len(values)
        assert index.max_degree == (max(counter.values()) if counter else 0)

    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_column_statistics_match_naive_counts(self, values):
        stats = ColumnStatistics.from_values("a", values)
        counter = Counter(values)
        assert stats.row_count == len(values)
        assert stats.distinct_count == len(counter)
        for value, count in counter.items():
            assert stats.degree(value) == count
        if counter:
            assert stats.max_degree == max(counter.values())
            assert stats.average_degree == pytest.approx(len(values) / len(counter))


# --------------------------------------------------------------------- set calculus
class TestUnionCalculusProperties:
    @given(sets=set_systems)
    @settings(max_examples=150, deadline=None)
    def test_theorem3_union_size_matches_brute_force(self, sets):
        names = [f"J{i}" for i in range(len(sets))]
        by_name = dict(zip(names, sets))

        def overlap_of(subset):
            members = [by_name[name] for name in subset]
            return float(len(frozenset.intersection(*members)))

        overlaps = compute_all_overlaps(names, overlap_of)
        areas = compute_k_overlaps(names, overlaps)
        union = union_size_from_k_overlaps(areas)
        expected = len(frozenset.union(*sets)) if sets else 0
        assert union == pytest.approx(expected)

    @given(sets=set_systems)
    @settings(max_examples=150, deadline=None)
    def test_k_overlaps_partition_each_set(self, sets):
        names = [f"J{i}" for i in range(len(sets))]
        by_name = dict(zip(names, sets))

        def overlap_of(subset):
            members = [by_name[name] for name in subset]
            return float(len(frozenset.intersection(*members)))

        overlaps = compute_all_overlaps(names, overlap_of)
        areas = compute_k_overlaps(names, overlaps)
        for name in names:
            assert sum(areas[name].values()) == pytest.approx(len(by_name[name]))
            assert all(v >= 0 for v in areas[name].values())

    @given(sets=set_systems)
    @settings(max_examples=150, deadline=None)
    def test_cover_sizes_sum_to_union_and_match_sequential_difference(self, sets):
        names = [f"J{i}" for i in range(len(sets))]
        by_name = dict(zip(names, sets))

        def overlap_of(subset):
            members = [by_name[name] for name in subset]
            return float(len(frozenset.intersection(*members)))

        overlaps = compute_all_overlaps(names, overlap_of)
        covers = cover_sizes_from_overlaps(names, overlaps)
        union = frozenset.union(*sets)
        assert sum(covers.values()) == pytest.approx(len(union))
        seen: set = set()
        for name in names:
            expected = len(set(by_name[name]) - seen)
            assert covers[name] == pytest.approx(expected)
            seen |= set(by_name[name])


# -------------------------------------------------------- incremental updates
#: one mutation of a two-column relation: ("append", row) | ("extend", rows) |
#: ("delete", key value on column a) | ("update", (row index hint, new a))
mutation_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.tuples(st.integers(0, 8), st.integers(0, 4))),
        st.tuples(
            st.just("extend"),
            st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4)), max_size=4),
        ),
        st.tuples(st.just("delete"), st.integers(0, 8)),
        st.tuples(st.just("update"), st.tuples(st.integers(0, 40), st.integers(0, 8))),
    ),
    min_size=1,
    max_size=25,
)


def _apply_ops(relation: Relation, ops) -> None:
    for kind, payload in ops:
        if kind == "append":
            relation.append(payload)
        elif kind == "extend":
            relation.extend(payload)
        elif kind == "delete":
            relation.delete_where(
                lambda row, schema, key=payload: row[schema.position("a")] == key
            )
        else:
            index_hint, new_value = payload
            if len(relation):
                relation.update_rows(
                    [index_hint % len(relation)], {"a": new_value}
                )


class TestIncrementalMaintenanceProperties:
    """Random interleavings of append/extend/delete/update agree with a
    from-scratch rebuild of the final row set — for indexes, statistics,
    column arrays, CSR indexes, and the sampling weights derived from them."""

    @given(rows=st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4)), max_size=20),
           ops=mutation_ops)
    @settings(max_examples=60, deadline=None)
    def test_maintained_structures_match_rebuild(self, rows, ops):
        relation = Relation("R", ["a", "b"], rows)
        # Build every cache first so each op exercises the delta path.
        relation.index_on("a")
        relation.sorted_index_on_columns(["a"])
        relation.statistics_on("a")
        relation.column_array("a")
        relation.index_on_columns(["a", "b"])
        _apply_ops(relation, ops)
        fresh = Relation("F", relation.schema, relation.rows)

        index, rebuilt = relation.index_on("a"), fresh.index_on("a")
        assert index.total_rows == rebuilt.total_rows
        assert index.max_degree == rebuilt.max_degree
        assert set(index.values()) == set(rebuilt.values())
        for value in rebuilt.values():
            assert sorted(index.positions(value)) == sorted(rebuilt.positions(value))

        csr, csr_rebuilt = (
            relation.sorted_index_on_columns(["a"]),
            fresh.sorted_index_on_columns(["a"]),
        )
        assert csr.total_rows == csr_rebuilt.total_rows
        for value in rebuilt.values():
            assert sorted(csr.positions(value).tolist()) == sorted(
                csr_rebuilt.positions(value).tolist()
            )

        assert (
            relation.statistics_on("a").frequencies()
            == fresh.statistics_on("a").frequencies()
        )
        assert relation.column_array("a").tolist() == fresh.column_array("a").tolist()

        composite = relation.index_on_columns(["a", "b"])
        composite_rebuilt = fresh.index_on_columns(["a", "b"])
        for value in composite_rebuilt.values():
            assert sorted(composite.positions(value)) == sorted(
                composite_rebuilt.positions(value)
            )

    @given(rows_r=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 3)),
                           min_size=1, max_size=12),
           rows_s=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 6)),
                           min_size=1, max_size=12),
           ops=mutation_ops)
    @settings(max_examples=40, deadline=None)
    def test_refreshed_weights_match_exact_size(self, rows_r, rows_s, ops):
        query = _build_two_relation_query((rows_r, rows_s))
        weights = ExactWeightFunction(query)
        _apply_ops(query.relation("R"), ops)
        weights.refresh()
        assert weights.total_weight == pytest.approx(
            exact_join_size(query, distinct=False)
        )
        rebuilt = ExactWeightFunction(query)
        assert np.allclose(weights.root_weights(), rebuilt.root_weights())

    @given(rows_r=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 3)),
                           min_size=1, max_size=12),
           rows_s=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 6)),
                           min_size=1, max_size=12),
           ops=mutation_ops)
    @settings(max_examples=25, deadline=None)
    def test_sample_support_matches_rebuilt_join(self, rows_r, rows_s, ops):
        """After churn, the maintained sampler's support equals the join of
        the rebuilt relations (sample-distribution equivalence at the support
        level; full chi-square equivalence is covered in test_dynamic)."""
        query = _build_two_relation_query((rows_r, rows_s))
        sampler = JoinSampler(query, weights="ew", seed=11)
        _apply_ops(query.relation("R"), ops)
        population = join_result_set(query)
        if not population:
            with pytest.raises(RuntimeError):
                sampler.sample_batch(1, max_attempts=64)
            return
        # Scale draws by the skeleton size: sampling is uniform over join
        # *results* (with multiplicity), so a distinct value backed by one
        # result out of n needs ~n draws to appear; 12n makes a miss ~e^-12.
        skeleton = int(exact_join_size(query, distinct=False))
        draws = sampler.sample_batch(12 * skeleton)
        assert {d.value for d in draws} == population


# -------------------------------------------------------------------------- joins
class TestJoinProperties:
    @given(query=two_relation_queries())
    @settings(max_examples=60, deadline=None)
    def test_olken_bound_dominates_exact_size(self, query):
        assert olken_upper_bound(query) >= exact_join_size(query, distinct=False)

    @given(query=two_relation_queries())
    @settings(max_examples=60, deadline=None)
    def test_exact_weight_total_equals_brute_force_size(self, query):
        ew = ExactWeightFunction(query)
        assert ew.total_weight == exact_join_size(query, distinct=False)

    @given(query=two_relation_queries())
    @settings(max_examples=60, deadline=None)
    def test_eo_total_dominates_ew_total(self, query):
        eo = ExtendedOlkenWeightFunction(query)
        ew = ExactWeightFunction(query)
        assert eo.total_weight >= ew.total_weight

    @given(query=two_relation_queries())
    @settings(max_examples=40, deadline=None)
    def test_membership_prober_agrees_with_executor(self, query):
        results = join_result_set(query)
        prober = JoinMembershipProber(query)
        for value in results:
            assert prober.contains(value)
        # Values just outside the join (perturbed c) must be rejected.
        for value in list(results)[:10]:
            perturbed = (value[0], value[1], value[2] + 100)
            assert not prober.contains(perturbed)
