"""Tests for the parallel sampling service (repro.parallel).

The load-bearing invariant: a parallel run is a *pure function of the shard
plan* — same queries, same seed, same shard count ⇒ bit-identical merged
answers for ANY worker count and for thread vs process execution, because the
coordinator merges fixed-seed shard results in shard order through the
exactly-rounded accumulator merge law.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aqp import AggregateSpec
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery
from repro.parallel import (
    DEFAULT_SHARDS,
    ParallelSamplerPool,
    ShardTask,
    parallel_aggregate,
    parallel_sample,
    run_shard,
    sequential_reference,
)
from repro.relational.relation import Relation
from repro.resilience import NO_FAULTS


def make_chain(name="chain", rows_r=None, rows_s=None) -> JoinQuery:
    rows_r = rows_r if rows_r is not None else [(i, i % 4) for i in range(24)]
    rows_s = rows_s if rows_s is not None else [(b, 10 * b + j) for b in range(4) for j in range(3)]
    return JoinQuery(
        name,
        [Relation("R", ["a", "b"], rows_r), Relation("S", ["b", "c"], rows_s)],
        [JoinCondition("R", "b", "S", "b")],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
    )


def make_union(count=2):
    return [
        make_chain(f"J{i}", rows_r=[(10 * i + k, k % 3) for k in range(12)],
                   rows_s=[(b, 100 + b) for b in range(3)])
        for i in range(count)
    ]


SPEC_SUM = AggregateSpec("sum", attribute="c")


def report_key(report):
    e = report.overall
    return (e.estimate, e.ci_low, e.ci_high, report.attempts, report.accepted)


class TestShardPlanning:
    def test_plan_is_independent_of_workers(self):
        query = make_chain()
        plans = [
            ParallelSamplerPool(workers=w).plan_tasks(query, 100, seed=5)
            for w in (1, 4)
        ]
        for a, b in zip(*plans):
            assert a.count == b.count
            assert a.seed.entropy == b.seed.entropy
            assert a.seed.spawn_key == b.seed.spawn_key

    def test_count_split_is_even_and_exact(self):
        tasks = ParallelSamplerPool().plan_tasks(make_chain(), 13, seed=0, shards=5)
        assert [t.count for t in tasks] == [3, 3, 3, 2, 2]

    def test_default_shard_count_is_fixed(self):
        tasks = ParallelSamplerPool(workers=3).plan_tasks(make_chain(), 40, seed=0)
        assert len(tasks) == DEFAULT_SHARDS

    def test_zero_count_job(self):
        report = parallel_sample(make_chain(), 0, seed=1, workers=2, execution="thread")
        assert report.values == []
        assert report.attempts == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ParallelSamplerPool(workers=0)
        with pytest.raises(ValueError):
            ParallelSamplerPool(execution="fibers")
        with pytest.raises(ValueError):
            ParallelSamplerPool().plan_tasks(make_chain(), -1, seed=0)
        with pytest.raises(ValueError):
            ParallelSamplerPool().plan_tasks(make_chain(), 10, seed=0, shards=0)

    def test_wander_join_rejected_for_plain_sampling(self):
        with pytest.raises(ValueError, match="wander-join"):
            ParallelSamplerPool().plan_tasks(make_chain(), 10, seed=0, method="wander-join")

    def test_unsupported_backend_rejected(self):
        with pytest.raises(ValueError, match="cannot sample"):
            ParallelSamplerPool().plan_tasks(make_union(), 10, seed=0, method="olken")

    def test_degenerate_union_count_rejected(self):
        with pytest.raises(ValueError, match="COUNT"):
            ParallelSamplerPool().plan_tasks(
                make_union(), 10, seed=0, spec=AggregateSpec("count")
            )


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_sample_identical_across_worker_counts(self, workers):
        reference = parallel_sample(make_chain(), 40, seed=17, workers=1, execution="thread")
        run = parallel_sample(make_chain(), 40, seed=17, workers=workers, execution="thread")
        assert run.values == reference.values
        assert run.sources == reference.sources
        assert run.attempts == reference.attempts

    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_aggregate_identical_across_worker_counts(self, workers):
        reference = parallel_aggregate(
            make_chain(), SPEC_SUM, 60, seed=23, workers=1, execution="thread"
        )
        run = parallel_aggregate(
            make_chain(), SPEC_SUM, 60, seed=23, workers=workers, execution="thread"
        )
        assert report_key(run) == report_key(reference)

    def test_matches_sequential_reference(self):
        pool = ParallelSamplerPool(workers=3, execution="thread")
        tasks = pool.plan_tasks(make_chain(), 30, seed=9, spec=SPEC_SUM, shards=4)
        merged = pool.aggregate(make_chain(), SPEC_SUM, 30, seed=9, shards=4).accumulator
        reference = None
        for result in sequential_reference(tasks):
            if reference is None:
                reference = result.accumulator
            else:
                reference.merge(result.accumulator)
        assert report_key(merged.estimate()) == report_key(reference.estimate())

    def test_union_sampling_identical_across_worker_counts(self):
        queries = make_union()
        reference = parallel_sample(queries, 20, seed=31, workers=1, execution="thread")
        run = parallel_sample(queries, 20, seed=31, workers=5, execution="thread")
        assert run.backend == "online-union"
        assert run.values == reference.values

    def test_explicit_olken_backend(self):
        reference = parallel_sample(
            make_chain(), 25, seed=3, workers=1, method="olken", execution="thread"
        )
        run = parallel_sample(
            make_chain(), 25, seed=3, workers=4, method="olken", execution="thread"
        )
        assert run.backend == "olken"
        assert run.values == reference.values


class TestProcessBackend:
    """Spawn-based workers; kept small (interpreter start-up per worker)."""

    def test_process_smoke_matches_thread_run(self):
        query = make_chain()
        thread_run = ParallelSamplerPool(workers=1, execution="thread").aggregate(
            query, SPEC_SUM, 24, seed=41, shards=2
        )
        process_run = ParallelSamplerPool(
            workers=2, execution="process", job_timeout=240
        ).aggregate(query, SPEC_SUM, 24, seed=41, shards=2)
        assert report_key(process_run.accumulator.estimate()) == report_key(
            thread_run.accumulator.estimate()
        )

    def test_auto_execution_falls_back_to_threads_for_small_jobs(self):
        pool = ParallelSamplerPool(workers=4, execution="auto")
        tasks = pool.plan_tasks(make_chain(), 32, seed=0)
        assert pool._resolve_execution(tasks) == "thread"

    def test_unpicklable_spec_falls_back_to_threads(self):
        pool = ParallelSamplerPool(workers=4, execution="auto")
        threshold = 5
        spec = AggregateSpec("count", where=lambda row: row["c"] > threshold)
        tasks = pool.plan_tasks(make_chain(), 100_000, seed=0, spec=spec)
        assert pool._resolve_execution(tasks) == "thread"


class TestEpochCancellation:
    def test_mid_flight_mutation_discards_and_restarts(self, monkeypatch):
        query = make_chain()
        pool = ParallelSamplerPool(workers=2, execution="thread")
        relation = query.relation("R")
        original_run = ParallelSamplerPool.run
        mutated = {"done": False}

        def run_and_mutate(self, tasks):
            results = original_run(self, tasks)
            if not mutated["done"]:
                mutated["done"] = True
                relation.extend([(99, 0)])  # epoch bump lands "mid-flight"
            return results

        monkeypatch.setattr(ParallelSamplerPool, "run", run_and_mutate)
        report = pool.aggregate(query, SPEC_SUM, 20, seed=7, shards=2)
        assert pool.epochs_restarted == 1
        assert report.epochs_restarted == 1
        # The merged answer reflects the post-mutation snapshot only: it is
        # identical to a fresh run against the mutated database.
        fresh = ParallelSamplerPool(workers=2, execution="thread").aggregate(
            query, SPEC_SUM, 20, seed=7, shards=2
        )
        assert report_key(report.accumulator.estimate()) == report_key(
            fresh.accumulator.estimate()
        )

    def test_endless_mutation_gives_up(self, monkeypatch):
        query = make_chain()
        pool = ParallelSamplerPool(workers=1, execution="thread", max_epoch_restarts=2)
        relation = query.relation("R")
        original_run = ParallelSamplerPool.run

        def always_mutate(self, tasks):
            results = original_run(self, tasks)
            relation.extend([(123, 1)])
            return results

        monkeypatch.setattr(ParallelSamplerPool, "run", always_mutate)
        with pytest.raises(RuntimeError, match="restarted"):
            pool.aggregate(query, SPEC_SUM, 10, seed=7, shards=2)


class TestShardWorker:
    def test_run_shard_zero_count_aggregate(self):
        task = ParallelSamplerPool().plan_tasks(
            make_chain(), 0, seed=0, spec=SPEC_SUM, shards=1
        )[0]
        # Unit test of the worker entry point: no supervisor above it to
        # retry, so opt out of the REPRO_FAULT_RATE chaos harness explicitly.
        result = run_shard(task, fault_plan=NO_FAULTS)
        assert result.accumulator is not None
        assert result.accumulator.attempts == 0

    def test_empty_join_aggregate_accounts_attempts(self):
        empty = JoinQuery(
            "empty",
            [Relation("R", ["a", "b"], [(1, 1)]), Relation("S", ["b", "c"], [(2, 5)])],
            [JoinCondition("R", "b", "S", "b")],
            [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
        )
        report = parallel_aggregate(
            empty, AggregateSpec("count"), 12, seed=0, workers=2,
            execution="thread", shards=3, method="exact-weight",
        )
        assert report.overall.estimate == 0.0
        assert report.attempts == 12
        # The run report's fleet totals must agree with the accumulator.
        run = ParallelSamplerPool(workers=2, execution="thread").aggregate(
            empty, AggregateSpec("count"), 12, seed=0, shards=3,
            method="exact-weight",
        )
        assert run.attempts == run.accumulator.attempts == 12

    def test_shard_seeds_are_pairwise_independent(self):
        tasks = ParallelSamplerPool().plan_tasks(make_chain(), 64, seed=5, shards=4)
        streams = [np.random.default_rng(t.seed).integers(0, 2**60, size=8) for t in tasks]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert list(streams[i]) != list(streams[j])

    def test_invalid_shard_task(self):
        seq = np.random.SeedSequence(0)
        with pytest.raises(ValueError):
            ShardTask(0, (make_chain(),), "warp-drive", 1, seq)
        with pytest.raises(ValueError):
            ShardTask(0, (make_chain(),), "exact-weight", -1, seq)
        with pytest.raises(ValueError, match="aggregate-only"):
            ShardTask(0, (make_chain(),), "wander-join", 1, seq, spec=None)


class TestOnlineAggregatorParallelism:
    """OnlineAggregator(parallelism=N): per-step fan-out over sampler shards."""

    def test_join_backend_deterministic_for_fixed_parallelism(self):
        from repro.aqp import OnlineAggregator

        query = make_chain()
        runs = [
            OnlineAggregator(
                query, SPEC_SUM, method="exact-weight", seed=19, parallelism=3
            ).until(0.2)
            for _ in range(2)
        ]
        assert report_key(runs[0]) == report_key(runs[1])

    def test_wander_backend_parallel_step(self):
        from repro.aqp import OnlineAggregator

        aggregator = OnlineAggregator(
            make_chain(), SPEC_SUM, method="wander-join", seed=19, parallelism=2
        )
        report = aggregator.step(100)
        assert report.attempts == 100

    def test_union_backend_parallel_step(self):
        from repro.aqp import OnlineAggregator

        aggregator = OnlineAggregator(
            make_union(), SPEC_SUM, method="online-union", seed=19, parallelism=2
        )
        report = aggregator.step(30)
        assert report.accepted >= 30

    def test_union_epoch_restart_resets_fleet(self):
        from repro.aqp import OnlineAggregator

        queries = make_union()
        aggregator = OnlineAggregator(
            queries, SPEC_SUM, method="online-union", seed=19, parallelism=2
        )
        aggregator.step(20)
        queries[0].relation("R").extend([(999, 0)])
        aggregator.step(20)
        assert aggregator.epochs_restarted == 1

    def test_invalid_parallelism_rejected(self):
        from repro.aqp import OnlineAggregator

        with pytest.raises(ValueError, match="parallelism"):
            OnlineAggregator(make_chain(), SPEC_SUM, seed=1, parallelism=0)

    def test_prebuilt_union_sampler_cannot_be_sharded(self):
        from repro.aqp import OnlineAggregator
        from repro.core.online_sampler import OnlineUnionSampler

        queries = make_union()
        prebuilt = OnlineUnionSampler(queries, seed=3, warmup="histogram")
        with pytest.raises(ValueError, match="union_sampler"):
            OnlineAggregator(
                queries, SPEC_SUM, method="online-union", seed=1,
                union_sampler=prebuilt, parallelism=2,
            )


class TestPoolLifecycle:
    """Regression: the pool owns its spawned resources and reaps them.

    The old behaviour built a fresh ThreadPoolExecutor inside every run and
    leaked it to GC — harmless for one-shot CLI jobs, a thread leak under a
    long-lived server.  The pool now keeps ONE executor, reuses it across
    runs, and close() / the context manager drains it deterministically.
    """

    @staticmethod
    def _pool_threads():
        import threading

        return [t for t in threading.enumerate()
                if t.name.startswith("repro-pool") and t.is_alive()]

    def test_executor_reused_across_runs(self):
        query = make_chain()
        pool = ParallelSamplerPool(workers=2, execution="thread")
        try:
            pool.sample(query, 32, seed=5)
            first = pool._thread_executor
            assert first is not None
            pool.sample(query, 32, seed=6)
            assert pool._thread_executor is first
        finally:
            pool.close()

    def test_close_reaps_spawned_threads_and_is_idempotent(self):
        query = make_chain()
        pool = ParallelSamplerPool(workers=2, execution="thread")
        pool.sample(query, 32, seed=5)
        assert self._pool_threads(), "expected live pool worker threads"
        pool.close()
        pool.close()  # idempotent
        assert pool.closed
        assert not self._pool_threads(), "close() must reap every worker thread"

    def test_closed_pool_rejects_new_jobs(self):
        query = make_chain()
        pool = ParallelSamplerPool(workers=2, execution="thread")
        tasks = pool.plan_tasks(query, 16, seed=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run(tasks)
        with pytest.raises(RuntimeError, match="closed"):
            pool.sample(query, 16, seed=1)

    def test_context_manager_closes(self):
        query = make_chain()
        with ParallelSamplerPool(workers=2, execution="thread") as pool:
            report = pool.sample(query, 24, seed=7)
            assert len(report.values) == 24
        assert pool.closed
        assert not self._pool_threads()

    def test_answers_unchanged_by_executor_reuse(self):
        query = make_chain()
        with ParallelSamplerPool(workers=2, execution="thread") as pool:
            first = pool.sample(query, 40, seed=9)
            second = pool.sample(query, 40, seed=9)
        assert first.values == second.values
        one_shot = parallel_sample(query, 40, workers=2, execution="thread", seed=9)
        assert one_shot.values == first.values
