"""Tests for the TPC-H style generator and the UQ1/UQ2/UQ3 workloads."""

import pytest

from repro.joins.executor import exact_overlap_size, exact_union_size, join_result_set
from repro.joins.query import JoinType, check_union_compatible
from repro.tpch.generator import TPCHGenerator, generate_tpch
from repro.tpch.schema import CARDINALITIES_AT_SF1, MINIMUM_ROWS, rows_at_scale
from repro.tpch.workloads import build_uq1, build_uq2, build_uq3, build_workload


class TestSchemaCardinalities:
    def test_rows_at_scale_uses_official_ratios(self):
        assert rows_at_scale("orders", 0.01) == 15_000
        assert rows_at_scale("lineitem", 0.01) == 60_000

    def test_rows_at_scale_floors_at_minimum(self):
        assert rows_at_scale("supplier", 1e-9) == MINIMUM_ROWS["supplier"]

    def test_unknown_table_and_bad_scale(self):
        with pytest.raises(KeyError):
            rows_at_scale("warehouse", 0.1)
        with pytest.raises(ValueError):
            rows_at_scale("orders", 0.0)


class TestGenerator:
    @pytest.fixture(scope="class")
    def tables(self):
        return generate_tpch(scale_factor=0.0005, seed=1)

    def test_all_tables_present(self, tables):
        assert set(tables) == set(CARDINALITIES_AT_SF1)

    def test_cardinalities(self, tables):
        assert len(tables["region"]) == 5
        assert len(tables["nation"]) == 25
        assert len(tables["orders"]) == rows_at_scale("orders", 0.0005)

    def test_primary_keys_unique(self, tables):
        for table, key in [
            ("region", "regionkey"),
            ("nation", "nationkey"),
            ("supplier", "suppkey"),
            ("customer", "custkey"),
            ("part", "partkey"),
            ("orders", "orderkey"),
        ]:
            keys = tables[table].column(key)
            assert len(keys) == len(set(keys)), f"{table}.{key} not unique"

    def test_foreign_keys_valid(self, tables):
        nation_keys = set(tables["nation"].column("nationkey"))
        assert set(tables["supplier"].column("nationkey")) <= nation_keys
        assert set(tables["customer"].column("nationkey")) <= nation_keys
        cust_keys = set(tables["customer"].column("custkey"))
        assert set(tables["orders"].column("custkey")) <= cust_keys
        order_keys = set(tables["orders"].column("orderkey"))
        assert set(tables["lineitem"].column("orderkey")) <= order_keys
        part_keys = set(tables["part"].column("partkey"))
        assert set(tables["partsupp"].column("partkey")) <= part_keys
        supp_keys = set(tables["supplier"].column("suppkey"))
        assert set(tables["partsupp"].column("suppkey")) <= supp_keys

    def test_determinism(self):
        a = generate_tpch(scale_factor=0.0005, seed=9)
        b = generate_tpch(scale_factor=0.0005, seed=9)
        for name in a:
            assert a[name].rows == b[name].rows

    def test_different_seeds_differ(self):
        a = generate_tpch(scale_factor=0.0005, seed=1)
        b = generate_tpch(scale_factor=0.0005, seed=2)
        assert a["orders"].rows != b["orders"].rows

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            TPCHGenerator(scale_factor=0)


class TestUQ1:
    def test_structure(self, uq1_small):
        assert len(uq1_small.queries) == 3
        check_union_compatible(uq1_small.queries)
        for query in uq1_small.queries:
            assert query.join_type is JoinType.CHAIN
            assert len(query.relation_names) == 5

    def test_overlap_scale_monotonicity(self):
        low = build_uq1(scale_factor=0.0005, overlap_scale=0.05, n_joins=3, seed=5)
        high = build_uq1(scale_factor=0.0005, overlap_scale=0.9, n_joins=3, seed=5)

        def overlap_ratio(workload):
            union = exact_union_size(workload.queries)
            if union == 0:
                return 0.0
            overlap = exact_overlap_size(workload.queries)
            return overlap / union

        assert overlap_ratio(high) > overlap_ratio(low)

    def test_joins_are_nonempty(self, uq1_small):
        for query in uq1_small.queries:
            assert len(join_result_set(query)) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_uq1(overlap_scale=1.5)
        with pytest.raises(ValueError):
            build_uq1(n_joins=0)


class TestUQ2:
    def test_structure(self, uq2_small):
        assert len(uq2_small.queries) == 3
        check_union_compatible(uq2_small.queries)
        for query in uq2_small.queries:
            assert query.join_type is JoinType.CHAIN

    def test_heavy_overlap(self, uq2_small):
        """UQ2 joins share the same data modulo predicates, so pairwise overlap
        is a large fraction of the smaller join."""
        union = exact_union_size(uq2_small.queries)
        overlap = exact_overlap_size(uq2_small.queries[:2])
        sizes = [len(join_result_set(q)) for q in uq2_small.queries[:2]]
        assert overlap > 0.3 * min(sizes)
        assert union > 0

    def test_predicates_actually_filter(self, uq2_small):
        base_sizes = {q.name: len(join_result_set(q)) for q in uq2_small.queries}
        assert len(set(base_sizes.values())) >= 2 or all(v > 0 for v in base_sizes.values())


class TestUQ3:
    def test_structure(self, uq3_small):
        assert len(uq3_small.queries) == 3
        check_union_compatible(uq3_small.queries)
        types = {q.name: q.join_type for q in uq3_small.queries}
        assert types["UQ3_JA"] is JoinType.ACYCLIC
        assert types["UQ3_JB"] is JoinType.CHAIN
        assert types["UQ3_JC"] is JoinType.CHAIN
        lengths = {len(q.relation_names) for q in uq3_small.queries}
        assert len(lengths) > 1, "UQ3 joins must have different lengths"

    def test_equivalent_customers_produce_overlap(self, uq3_small):
        overlap = exact_overlap_size(uq3_small.queries)
        assert overlap > 0

    def test_vertical_split_is_lossless(self, uq3_small):
        """J_A and J_B cover the same logical join; restricted to the shared
        customer group their result sets must intersect heavily."""
        results_a = join_result_set(uq3_small.query("UQ3_JA"))
        results_b = join_result_set(uq3_small.query("UQ3_JB"))
        shared = results_a & results_b
        assert shared  # the shared customer group is non-empty at this seed

    def test_invalid_overlap_scale(self):
        with pytest.raises(ValueError):
            build_uq3(overlap_scale=-0.1)


class TestBuildWorkload:
    def test_dispatch(self):
        assert build_workload("uq1", scale_factor=0.0005, seed=1).name == "UQ1"
        assert build_workload("UQ2", scale_factor=0.0005, seed=1).name == "UQ2"
        assert build_workload("uq3", scale_factor=0.0005, seed=1).name == "UQ3"

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            build_workload("UQ9")

    def test_workload_query_lookup(self, uq1_small):
        assert uq1_small.query(uq1_small.query_names[0]).name == uq1_small.query_names[0]
        with pytest.raises(KeyError):
            uq1_small.query("nope")
