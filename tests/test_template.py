"""Tests for repro.joins.template (standard template search, §8.1)."""

import pytest

from repro.joins.template import (
    Template,
    attribute_distance,
    find_standard_template,
    pairwise_scores,
    relation_distances,
)


class TestDistances:
    def test_relation_distances_chain(self, chain_query):
        dist = relation_distances(chain_query)
        assert dist["R"]["R"] == 0
        assert dist["R"]["S"] == 1
        assert dist["R"]["T"] == 2
        assert dist["T"]["R"] == 2

    def test_attribute_distance_same_relation_is_zero(self, chain_query):
        # 'a' comes from R; 'c' comes from S; 'd' comes from T.
        assert attribute_distance(chain_query, "a", "a") == 0
        assert attribute_distance(chain_query, "a", "c") == 1
        assert attribute_distance(chain_query, "a", "d") == 2

    def test_attribute_distance_unknown_attribute(self, chain_query):
        with pytest.raises(KeyError):
            attribute_distance(chain_query, "a", "zzz")


class TestPairwiseScores:
    def test_scores_sum_over_queries(self, union_pair):
        scores = pairwise_scores(union_pair)
        # Both joins place 'a' in R and 'c' in S -> distance 1 each -> score 2.
        assert scores[("a", "c")] == 2.0
        assert scores[("c", "a")] == 2.0

    def test_zero_distance_weight(self, chain_query):
        scores_default = pairwise_scores([chain_query], zero_distance_weight=0.0)
        scores_weighted = pairwise_scores([chain_query], zero_distance_weight=0.5)
        # 'a' and 'c' never share a relation here, so their score is unchanged;
        # a pair in the same relation would change.  Use (a, a)?  Not a pair —
        # instead check the weighting machinery by comparing totals.
        assert scores_default[("a", "c")] == scores_weighted[("a", "c")]

    def test_requires_matching_output_schemas(self, union_pair, chain_query):
        with pytest.raises(ValueError):
            pairwise_scores([union_pair[0], chain_query])

    def test_requires_queries(self):
        with pytest.raises(ValueError):
            pairwise_scores([])


class TestTemplateSearch:
    def test_template_orders_attributes_to_minimize_score(self, chain_query):
        # Output attributes a (R), c (S), d (T); the chain order a-c-d has
        # consecutive scores 1+1=2 which is minimal (a-d-c would cost 2+1=3).
        template = find_standard_template([chain_query])
        assert template.attributes in (("a", "c", "d"), ("d", "c", "a"))
        assert template.score == pytest.approx(2.0)

    def test_single_attribute_template(self, union_pair):
        template = find_standard_template(union_pair, attributes=["a"])
        assert template.attributes == ("a",)
        assert template.score == 0.0

    def test_pairs_helper(self):
        template = Template(("a", "b", "c"), 0.0)
        assert template.pairs() == [("a", "b"), ("b", "c")]
        assert len(template) == 3

    def test_greedy_matches_exact_on_small_inputs(self, chain_query):
        from repro.joins import template as template_module

        scores = pairwise_scores([chain_query])

        def score(a, b):
            return scores[(a, b)]

        exact_order, exact_cost = template_module._exact_min_path(("a", "c", "d"), score)
        greedy_order, greedy_cost = template_module._greedy_min_path(("a", "c", "d"), score)
        assert exact_cost <= greedy_cost
        assert exact_cost == pytest.approx(2.0)

    def test_template_on_heterogeneous_union(self, uq3_small):
        template = find_standard_template(uq3_small.queries)
        assert set(template.attributes) == set(uq3_small.queries[0].output_schema)
        # Attributes that co-occur in the customer fragments should be adjacent
        # more often than not; at minimum the template must be a permutation.
        assert len(template.attributes) == len(set(template.attributes))
