"""Tests for repro.analysis (uniformity tests and error metrics)."""

import math

import numpy as np
import pytest

from repro.analysis.errors import (
    absolute_error,
    mean_ratio_error,
    overlap_errors,
    ratio_estimation_errors,
    relative_error,
    summarize_errors,
    union_size_error,
)
from repro.analysis.uniformity import (
    chi_square_sf,
    chi_square_uniformity,
    frequency_table,
    max_absolute_deviation,
    serial_independence_statistic,
)
from repro.estimation.parameters import UnionParameters


class TestChiSquare:
    def test_accepts_uniform_samples(self):
        rng = np.random.default_rng(0)
        population = list(range(20))
        samples = [int(rng.integers(0, 20)) for _ in range(4000)]
        result = chi_square_uniformity(samples, population)
        assert not result.rejects_uniformity(alpha=0.01)
        assert result.degrees_of_freedom == 19

    def test_rejects_biased_samples(self):
        rng = np.random.default_rng(1)
        population = list(range(20))
        # value 0 drawn 5x as often as the others
        weights = np.array([5.0] + [1.0] * 19)
        weights /= weights.sum()
        samples = [int(rng.choice(20, p=weights)) for _ in range(4000)]
        result = chi_square_uniformity(samples, population)
        assert result.rejects_uniformity(alpha=0.01)

    def test_sample_outside_population_is_fatal(self):
        result = chi_square_uniformity([1, 2, 99], [1, 2, 3])
        assert math.isinf(result.statistic)
        assert result.p_value == 0.0

    def test_requires_nonempty_inputs(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([], [1])
        with pytest.raises(ValueError):
            chi_square_uniformity([1], [])

    def test_sf_monotone_decreasing(self):
        assert chi_square_sf(1.0, 5) > chi_square_sf(10.0, 5) > chi_square_sf(100.0, 5)

    def test_sf_invalid_dof(self):
        with pytest.raises(ValueError):
            chi_square_sf(1.0, 0)

    def test_sf_wilson_hilferty_fallback_close_to_scipy(self, monkeypatch):
        """The numpy-only fallback must stay within a couple of percent of the
        exact chi-square survival function."""
        scipy_stats = pytest.importorskip("scipy.stats")
        from repro.analysis import uniformity as module

        monkeypatch.setattr(module, "_scipy_stats", None)
        for stat, dof in [(3.0, 2), (12.0, 8), (30.0, 20), (8.0, 8)]:
            approx = module.chi_square_sf(stat, dof)
            exact = float(scipy_stats.chi2.sf(stat, dof))
            assert approx == pytest.approx(exact, abs=0.02)


class TestOtherUniformityHelpers:
    def test_frequency_table(self):
        assert frequency_table(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_max_absolute_deviation(self):
        assert max_absolute_deviation([1, 1, 2, 2], [1, 2]) == 0.0
        assert max_absolute_deviation([1, 1, 1, 2], [1, 2]) == pytest.approx(0.25)

    def test_max_absolute_deviation_validates(self):
        with pytest.raises(ValueError):
            max_absolute_deviation([], [1])

    def test_serial_independence_near_one_for_iid(self):
        rng = np.random.default_rng(3)
        samples = [int(rng.integers(0, 10)) for _ in range(5000)]
        assert serial_independence_statistic(samples) == pytest.approx(1.0, abs=0.35)

    def test_serial_independence_detects_sticky_sampler(self):
        sticky = [0, 0, 1, 1, 2, 2, 3, 3] * 100
        assert serial_independence_statistic(sticky) > 2.0

    def test_serial_independence_degenerate_cases(self):
        assert serial_independence_statistic([1]) == 1.0
        assert math.isinf(serial_independence_statistic([1, 1, 1]))


def params(join_sizes, union_size, overlaps=None):
    names = list(join_sizes)
    return UnionParameters(
        join_order=names,
        join_sizes=dict(join_sizes),
        cover_sizes=dict(join_sizes),
        union_size=union_size,
        overlaps=overlaps or {},
    )


class TestErrorMetrics:
    def test_absolute_and_relative(self):
        assert absolute_error(3.0, 5.0) == 2.0
        assert relative_error(3.0, 5.0) == pytest.approx(0.4)
        assert relative_error(3.0, 0.0) == float("inf")
        assert relative_error(0.0, 0.0) == 0.0

    def test_ratio_errors_and_mean(self):
        estimated = params({"J1": 4.0, "J2": 4.0}, union_size=8.0)
        exact = params({"J1": 6.0, "J2": 4.0}, union_size=8.0)
        errors = ratio_estimation_errors(estimated, exact)
        assert errors["J1"] == pytest.approx(0.25)
        assert errors["J2"] == 0.0
        assert mean_ratio_error(estimated, exact) == pytest.approx(0.125)

    def test_union_size_error(self):
        estimated = params({"J1": 4.0}, union_size=6.0)
        exact = params({"J1": 4.0}, union_size=8.0)
        assert union_size_error(estimated, exact) == pytest.approx(0.25)

    def test_overlap_errors(self):
        key = frozenset(["J1", "J2"])
        estimated = params({"J1": 4.0, "J2": 4.0}, 6.0, {key: 3.0})
        exact = params({"J1": 4.0, "J2": 4.0}, 6.0, {key: 2.0})
        assert overlap_errors(estimated, exact)[key] == pytest.approx(0.5)

    def test_summarize(self):
        summary = summarize_errors([0.1, 0.3, 0.2])
        assert summary == {"min": 0.1, "mean": pytest.approx(0.2), "max": 0.3}
        assert summarize_errors([]) == {"min": 0.0, "mean": 0.0, "max": 0.0}
