"""Smoke-collect the runnable examples so the demos cannot silently rot.

The reuse demo broke once before by drifting behind the library's API; running
it (in its --quick configuration) as part of the tier-1 suite turns any future
drift into a test failure instead of a bad first impression.  Examples run in
a subprocess — exactly how a user runs them — so import-time breakage,
argument parsing, and output paths are all covered.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"
SRC = REPO_ROOT / "src"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(SRC)},
        cwd=str(REPO_ROOT),
    )


def test_online_sampling_with_reuse_example_runs():
    result = run_example("online_sampling_with_reuse.py", "--quick")
    assert result.returncode == 0, result.stderr
    # Both generations of reuse must actually report: the Algorithm 2 pool
    # and the cross-query SampleBlock cache tier.
    assert "online union sampling with reuse" in result.stdout
    assert "cross-query reuse through the SampleBlock cache tier" in result.stdout
    assert "cache after the run" in result.stdout
