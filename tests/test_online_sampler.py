"""Tests for repro.core.online_sampler (Algorithm 2: reuse + backtracking)."""

import pytest

from repro.core.online_sampler import OnlineUnionSampler
from repro.estimation.random_walk import RandomWalkUnionEstimator
from repro.joins.executor import join_result_set

from tests.stat_helpers import assert_no_catastrophic_bias


def union_values(queries):
    union = set()
    for query in queries:
        union |= join_result_set(query)
    return sorted(union)


class TestConstruction:
    def test_invalid_options_rejected(self, union_pair):
        with pytest.raises(ValueError):
            OnlineUnionSampler(union_pair, warmup="magic")
        with pytest.raises(ValueError):
            OnlineUnionSampler(union_pair, phi=0)
        with pytest.raises(ValueError):
            OnlineUnionSampler(union_pair, gamma=0.0)

    def test_histogram_warmup_has_empty_pools(self, union_pair):
        sampler = OnlineUnionSampler(union_pair, warmup="histogram", seed=1)
        assert all(not pool for pool in sampler._pools.values())

    def test_random_walk_warmup_fills_pools(self, union_pair):
        sampler = OnlineUnionSampler(
            union_pair, warmup="random-walk", walks_per_join=100, seed=2
        )
        assert any(pool for pool in sampler._pools.values())

    def test_reuse_disabled_keeps_pools_empty(self, union_pair):
        sampler = OnlineUnionSampler(
            union_pair, warmup="random-walk", walks_per_join=100, seed=3, reuse=False
        )
        assert all(not pool for pool in sampler._pools.values())

    def test_prebuilt_warmup_estimator(self, union_pair):
        estimator = RandomWalkUnionEstimator(union_pair, walks_per_join=100, seed=4)
        sampler = OnlineUnionSampler(union_pair, warmup_estimator=estimator, seed=4)
        assert len(sampler.sample(20)) == 20


class TestSampling:
    def test_samples_belong_to_the_union(self, union_triple):
        sampler = OnlineUnionSampler(union_triple, seed=5, walks_per_join=150)
        result = sampler.sample(200)
        universe = set(union_values(union_triple))
        assert len(result) == 200
        assert all(s.value in universe for s in result.samples)

    def test_reuse_counters_and_flags(self, union_triple):
        sampler = OnlineUnionSampler(union_triple, seed=6, walks_per_join=300)
        result = sampler.sample(150)
        assert result.stats.reused_accepted > 0
        assert any(s.reused for s in result.samples)
        assert result.algorithm.endswith("-reuse")

    def test_without_reuse_no_reused_samples(self, union_triple):
        sampler = OnlineUnionSampler(union_triple, seed=7, walks_per_join=150, reuse=False)
        result = sampler.sample(100)
        assert result.stats.reused_accepted == 0
        assert not any(s.reused for s in result.samples)

    def test_sampling_distribution_not_degenerate(self, union_triple):
        """The online sampler (approximate by design) must still cover the whole
        union and not over-sample any value catastrophically."""
        sampler = OnlineUnionSampler(union_triple, seed=8, walks_per_join=400, phi=100)
        result = sampler.sample(2500)
        values = [s.value for s in result.samples]
        universe = union_values(union_triple)
        # Loose sanity threshold: catastrophic bias (e.g. one value sampled 2x
        # as often as expected) fails the shared harness check.
        assert_no_catastrophic_bias(values, universe, factor=2.0)

    def test_backtracking_rounds_triggered(self, union_triple):
        sampler = OnlineUnionSampler(
            union_triple, seed=9, walks_per_join=100, phi=50, gamma=0.999
        )
        result = sampler.sample(400)
        assert result.stats.backtrack_rounds > 0
        assert sampler.confidence_level > 0.0

    def test_zero_samples(self, union_pair):
        sampler = OnlineUnionSampler(union_pair, seed=10, walks_per_join=50)
        assert len(sampler.sample(0)) == 0

    def test_negative_count_rejected(self, union_pair):
        sampler = OnlineUnionSampler(union_pair, seed=11, walks_per_join=50)
        with pytest.raises(ValueError):
            sampler.sample(-5)


class TestTimeAccounting:
    def test_reuse_phase_time_tracked(self, union_triple):
        sampler = OnlineUnionSampler(union_triple, seed=12, walks_per_join=300)
        result = sampler.sample(200)
        stats = result.stats
        assert stats.timer.get("warmup") > 0
        if stats.reused_accepted:
            assert stats.time_per_accepted("reuse") >= 0.0
        assert stats.time_per_accepted("regular") >= 0.0
        assert stats.time_per_accepted() > 0.0

    def test_estimation_update_time_recorded_when_backtracking(self, union_triple):
        sampler = OnlineUnionSampler(
            union_triple, seed=13, walks_per_join=100, phi=40, gamma=0.999
        )
        result = sampler.sample(300)
        if result.stats.backtrack_rounds:
            assert result.stats.timer.get("estimation_update") > 0
