"""Tests for repro.joins.executor: the FullJoinUnion ground truth."""

import pytest

from repro.joins.executor import (
    exact_disjoint_union_size,
    exact_join_size,
    exact_overlap_size,
    exact_union_size,
    execute_join,
    iterate_join_assignments,
    join_result_set,
)


class TestChainExecution:
    def test_chain_results_match_hand_computation(self, chain_query):
        results = sorted(execute_join(chain_query))
        assert results == [
            (1, 100, 7),
            (1, 200, 8),
            (2, 300, 9),
            (2, 300, 10),
            (3, 100, 7),
            (3, 200, 8),
        ]

    def test_exact_join_size_distinct_and_raw(self, chain_query):
        assert exact_join_size(chain_query) == 6
        assert exact_join_size(chain_query, distinct=False) == 6

    def test_assignments_cover_all_relations(self, chain_query):
        for assignment in iterate_join_assignments(chain_query):
            assert set(assignment) == {"R", "S", "T"}


class TestAcyclicExecution:
    def test_star_results(self, acyclic_query):
        results = sorted(execute_join(acyclic_query))
        assert results == [
            (1, "d1", "e1"),
            (1, "d2", "e1"),
            (2, "d3", "e2"),
            (2, "d3", "e3"),
        ]

    def test_size(self, acyclic_query):
        assert exact_join_size(acyclic_query) == 4


class TestCyclicExecution:
    def test_triangle_results_respect_residual(self, cyclic_query):
        results = sorted(execute_join(cyclic_query))
        assert results == [(1, 2, 4), (7, 2, 4)]

    def test_size(self, cyclic_query):
        assert exact_join_size(cyclic_query) == 2


class TestUnionAndOverlap:
    def test_union_pair_sizes(self, union_pair):
        j1, j2 = union_pair
        assert join_result_set(j1) == {(1, 100), (1, 200), (2, 300)}
        assert join_result_set(j2) == {(1, 100), (1, 200), (3, 400)}
        assert exact_overlap_size(union_pair) == 2
        assert exact_union_size(union_pair) == 4
        assert exact_disjoint_union_size(union_pair) == 6

    def test_union_triple_sizes(self, union_triple):
        assert exact_union_size(union_triple) == 5
        assert exact_overlap_size(union_triple) == 1  # only (1, 100) is in all three
        assert exact_overlap_size(union_triple[:2]) == 2

    def test_overlap_of_empty_list(self):
        assert exact_overlap_size([]) == 0

    def test_overlap_disjoint_joins(self, union_pair):
        from tests.conftest import make_chain_query

        j_disjoint = make_chain_query("JD", r_rows=[(9, 90)], s_rows=[(90, 900)])
        assert exact_overlap_size([union_pair[0], j_disjoint]) == 0


class TestEdgeCases:
    def test_empty_relation_produces_no_results(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[], s_rows=[(10, 100)])
        assert execute_join(query) == []
        assert exact_join_size(query) == 0

    def test_duplicate_output_values_collapse_in_distinct_size(self):
        from tests.conftest import make_chain_query

        # Two R rows with the same 'a' value and the same join key produce
        # identical output values when only (a, c) is projected.
        query = make_chain_query(
            "dups", r_rows=[(1, 10), (1, 10)], s_rows=[(10, 100)], output=("a", "c")
        )
        assert exact_join_size(query, distinct=False) == 2
        assert exact_join_size(query, distinct=True) == 1
