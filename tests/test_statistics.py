"""Tests for repro.relational.statistics."""

import pytest

from repro.relational.statistics import (
    ColumnStatistics,
    EquiWidthHistogram,
    HistogramBucket,
    merge_statistics,
)


class TestColumnStatistics:
    def test_from_values_degrees(self):
        stats = ColumnStatistics.from_values("a", [1, 1, 2, 3, 3, 3])
        assert stats.degree(3) == 3
        assert stats.degree(99) == 0
        assert stats.max_degree == 3
        assert stats.distinct_count == 3
        assert stats.row_count == 6

    def test_average_degree_and_skew(self):
        stats = ColumnStatistics.from_values("a", [1, 1, 2, 2])
        assert stats.average_degree == 2.0
        assert stats.skew() == 1.0
        skewed = ColumnStatistics.from_values("a", [1, 1, 1, 2])
        assert skewed.skew() > 1.0

    def test_empty_column(self):
        stats = ColumnStatistics.from_values("a", [])
        assert stats.max_degree == 0
        assert stats.average_degree == 0.0
        assert stats.skew() == 0.0

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            ColumnStatistics("a", {1: -1})

    def test_common_values_sorted_by_frequency(self):
        stats = ColumnStatistics.from_values("a", [1, 2, 2, 3, 3, 3])
        assert stats.common_values(2) == [(3, 3), (2, 2)]

    def test_frequencies_returns_copy(self):
        stats = ColumnStatistics.from_values("a", [1])
        freq = stats.frequencies()
        freq[1] = 100
        assert stats.degree(1) == 1


class TestEquiWidthHistogram:
    def test_single_value_column(self):
        hist = EquiWidthHistogram.from_values("a", [5, 5, 5])
        assert hist.row_count == 3
        assert hist.degree_upper_bound(5) == 3
        assert hist.degree_upper_bound(6) == 0

    def test_bucket_bounds_and_estimates(self):
        values = list(range(100))
        hist = EquiWidthHistogram.from_values("a", values, bucket_count=10)
        assert hist.row_count == 100
        bound = hist.degree_upper_bound(5)
        assert bound >= 1
        assert hist.degree_estimate(5) == pytest.approx(1.0)

    def test_upper_bound_dominates_true_degree(self):
        values = [1] * 30 + list(range(2, 20))
        hist = EquiWidthHistogram.from_values("a", values, bucket_count=4)
        assert hist.degree_upper_bound(1) >= 30
        assert hist.max_degree_upper_bound() >= 30

    def test_empty_values(self):
        hist = EquiWidthHistogram.from_values("a", [])
        assert hist.row_count == 0
        assert hist.degree_upper_bound(1.0) == 0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram.from_values("a", [1.0], bucket_count=0)

    def test_rejects_unsorted_buckets(self):
        b1 = HistogramBucket(0, 10, 5, 5)
        b2 = HistogramBucket(5, 15, 5, 5)
        with pytest.raises(ValueError):
            EquiWidthHistogram("a", [b1, b2])


class TestMergeStatistics:
    def test_merges_fragment_histograms(self):
        left = ColumnStatistics.from_values("a", [1, 1, 2])
        right = ColumnStatistics.from_values("a", [2, 3])
        merged = merge_statistics([left, right])
        assert merged.degree(1) == 2
        assert merged.degree(2) == 2
        assert merged.degree(3) == 1
        assert merged.row_count == 5

    def test_merge_empty_list(self):
        merged = merge_statistics([], attribute="a")
        assert merged.row_count == 0
