"""Tests for repro.sampling.wander_join."""

import math

import pytest

from repro.joins.executor import exact_join_size, join_result_set
from repro.sampling.wander_join import RunningEstimator, WanderJoin, z_value


class TestWalks:
    def test_walk_probability_matches_hand_computation(self, chain_query):
        """Every successful walk's probability must equal the product of
        1/|R| and 1/(joinable count) along its own path (Example 6)."""
        wj = WanderJoin(chain_query, seed=3)
        r = chain_query.relation("R")
        s = chain_query.relation("S")
        t = chain_query.relation("T")
        for _ in range(200):
            walk = wj.walk()
            if not walk.success:
                continue
            assignment = walk.assignment
            b_value = r.value(assignment["R"], "b")
            c_value = s.value(assignment["S"], "c")
            expected = (
                1.0
                / len(r)
                / s.index_on("b").degree(b_value)
                / t.index_on("c").degree(c_value)
            )
            assert walk.probability == pytest.approx(expected)

    def test_walk_values_are_join_members(self, acyclic_query):
        wj = WanderJoin(acyclic_query, seed=5)
        results = join_result_set(acyclic_query)
        for walk in wj.walks(200):
            if walk.success:
                assert walk.value in results

    def test_cyclic_walk_respects_residual(self, cyclic_query):
        wj = WanderJoin(cyclic_query, seed=7)
        results = join_result_set(cyclic_query)
        successes = [w for w in wj.walks(400) if w.success]
        assert successes, "expected at least one successful walk"
        for walk in successes:
            assert walk.value in results

    def test_failed_walk_has_zero_inverse_probability(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("sparse", r_rows=[(1, 10), (2, 99)], s_rows=[(10, 100)])
        wj = WanderJoin(query, seed=1)
        failures = [w for w in wj.walks(100) if not w.success]
        assert failures
        assert all(w.inverse_probability == 0.0 for w in failures)

    def test_empty_root_relation(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("void", r_rows=[], s_rows=[(10, 100)])
        wj = WanderJoin(query, seed=1)
        assert not wj.walk().success

    def test_negative_walk_count_rejected(self, chain_query):
        with pytest.raises(ValueError):
            WanderJoin(chain_query, seed=0).walks(-1)


class TestSizeEstimation:
    @pytest.mark.parametrize("fixture", ["chain_query", "acyclic_query", "cyclic_query"])
    def test_ht_estimate_close_to_exact(self, fixture, request):
        query = request.getfixturevalue(fixture)
        wj = WanderJoin(query, seed=11)
        estimate = wj.estimate_size(max_walks=4000, relative_half_width=0.05)
        exact = exact_join_size(query, distinct=False)
        assert estimate.estimate == pytest.approx(exact, rel=0.25)

    def test_estimate_on_tpch_join(self, uq1_small):
        query = uq1_small.queries[0]
        exact = exact_join_size(query, distinct=False)
        estimate = WanderJoin(query, seed=13).estimate_size(max_walks=3000)
        assert estimate.estimate == pytest.approx(exact, rel=0.35)

    def test_confidence_interval_shrinks_with_more_walks(self, chain_query):
        few = WanderJoin(chain_query, seed=17).estimate_size(min_walks=50, max_walks=50,
                                                             relative_half_width=0.0)
        many = WanderJoin(chain_query, seed=17).estimate_size(min_walks=2000, max_walks=2000,
                                                              relative_half_width=0.0)
        assert many.half_width <= few.half_width

    def test_success_rate_reported(self, chain_query):
        estimate = WanderJoin(chain_query, seed=19).estimate_size(max_walks=200)
        assert 0.0 < estimate.success_rate <= 1.0


class TestRunningEstimator:
    def test_incremental_mean_matches_batch_mean(self):
        estimator = RunningEstimator()
        values = [10.0, 0.0, 20.0, 10.0, 5.0]
        for v in values:
            estimator.add(v)
        assert estimator.mean == pytest.approx(sum(values) / len(values))
        assert estimator.successes == 4

    def test_variance_matches_textbook_formula(self):
        estimator = RunningEstimator()
        values = [1.0, 3.0, 5.0]
        for v in values:
            estimator.add(v)
        mean = sum(values) / 3
        expected = sum((v - mean) ** 2 for v in values) / 2
        assert estimator.variance == pytest.approx(expected)

    def test_estimate_before_two_samples_has_zero_half_width(self):
        estimator = RunningEstimator()
        estimator.add(5.0)
        assert estimator.estimate().half_width == 0.0


class TestZValue:
    def test_common_quantiles(self):
        assert z_value(0.90) == pytest.approx(1.6449, abs=1e-3)
        assert z_value(0.95) == pytest.approx(1.9600, abs=1e-3)
        assert z_value(0.99) == pytest.approx(2.5758, abs=1e-3)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            z_value(1.5)
        with pytest.raises(ValueError):
            z_value(0.0)
