"""Tests for repro.analysis.cost (the Theorem-2 cost model)."""

import math

import pytest

from repro.analysis.cost import expected_sampling_cost, observed_cost
from repro.core.union_sampler import SetUnionSampler
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.parameters import UnionParameters


def make_parameters():
    return UnionParameters(
        join_order=["J1", "J2"],
        join_sizes={"J1": 60.0, "J2": 50.0},
        cover_sizes={"J1": 60.0, "J2": 40.0},
        union_size=100.0,
    )


class TestExpectedCost:
    def test_per_join_expectations(self):
        cost = expected_sampling_cost(make_parameters(), 100)
        assert cost.per_join_expected_samples["J1"] == pytest.approx(60.0)
        assert cost.per_join_expected_samples["J2"] == pytest.approx(40.0)
        assert cost.per_join_expected_draws["J1"] == pytest.approx(60.0 * math.log(60.0))

    def test_total_below_theorem2_bound(self):
        for n in (2, 10, 100, 1000):
            cost = expected_sampling_cost(make_parameters(), n)
            assert cost.expected_total_draws <= cost.theorem2_bound + 1e-9

    def test_small_sample_sizes(self):
        assert expected_sampling_cost(make_parameters(), 0).expected_total_draws == 0.0
        one = expected_sampling_cost(make_parameters(), 1)
        assert one.theorem2_bound == 1.0
        assert one.amplification <= 1.0 + 1e-9

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ValueError):
            expected_sampling_cost(make_parameters(), -1)

    def test_amplification_growth_is_logarithmic(self):
        small = expected_sampling_cost(make_parameters(), 10)
        large = expected_sampling_cost(make_parameters(), 1000)
        assert large.amplification > small.amplification
        assert large.amplification <= 1 + math.log(1000)


class TestObservedCost:
    def test_observed_cost_matches_sampler_counters(self, union_triple):
        exact = FullJoinUnionEstimator(union_triple).estimate()
        sampler = SetUnionSampler(union_triple, exact, seed=3, mode="record")
        result = sampler.sample(100)
        observed = observed_cost(result)
        assert observed["samples"] == 100.0
        assert observed["iterations"] >= 100.0
        assert observed["draws_per_sample"] >= 1.0

    def test_observed_iterations_within_theorem2_style_budget(self, union_triple):
        """The measured iteration count should stay within the N + N log N
        envelope of Theorem 2 (with slack for the small-N regime)."""
        exact = FullJoinUnionEstimator(union_triple).estimate()
        sampler = SetUnionSampler(union_triple, exact, seed=5, mode="strict")
        n = 200
        result = sampler.sample(n)
        bound = expected_sampling_cost(exact, n).theorem2_bound
        assert result.stats.iterations <= 3.0 * bound
