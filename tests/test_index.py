"""Tests for repro.relational.index."""

from repro.relational.index import HashIndex


class TestHashIndex:
    def test_build_from_values(self):
        idx = HashIndex.build([10, 20, 10, 30], "a")
        assert idx.positions(10) == (0, 2)
        assert idx.positions(20) == (1,)
        assert idx.positions(99) == ()

    def test_degree(self):
        idx = HashIndex.build(["x", "y", "x", "x"], "a")
        assert idx.degree("x") == 3
        assert idx.degree("missing") == 0

    def test_contains_and_len(self):
        idx = HashIndex.build([1, 1, 2], "a")
        assert 1 in idx and 3 not in idx
        assert len(idx) == 2  # distinct values

    def test_max_degree_and_total_rows(self):
        idx = HashIndex.build([5, 5, 5, 6], "a")
        assert idx.max_degree == 3
        assert idx.total_rows == 4

    def test_empty_index(self):
        idx = HashIndex.build([], "a")
        assert len(idx) == 0
        assert idx.max_degree == 0
        assert idx.total_rows == 0
        assert idx.positions(1) == ()

    def test_values_and_items(self):
        idx = HashIndex.build([1, 2, 1], "a")
        assert set(idx.values()) == {1, 2}
        assert dict(idx.items()) == {1: (0, 2), 2: (1,)}

    def test_tuple_keys_supported(self):
        idx = HashIndex.build([(1, "a"), (1, "b"), (1, "a")], "composite")
        assert idx.positions((1, "a")) == (0, 2)
        assert idx.max_degree == 2
