"""Shared statistical assertions for sampler tests.

Every sampler test used to hand-roll the same three lines around
``chi_square_uniformity``; these helpers centralize that boilerplate (and its
failure messages) so uniformity checks read identically across
``test_join_sampler``, ``test_online_sampler``, ``test_batch_sampling`` and
``test_dynamic``.

The companion fixed-seed RNG fixture lives in ``conftest.py`` (``stat_rng``).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence, Tuple, Union

from repro.analysis.uniformity import ChiSquareResult, chi_square_uniformity

#: One shared seed for statistical fixtures: tests stay deterministic, and a
#: future re-seed (if a fixed stream ever lands on an unlucky tail) is one
#: edit instead of a hunt through every test module.
STAT_SEED = 20230717


def assert_uniform(
    samples: Iterable[Hashable],
    population: Sequence[Hashable],
    alpha: float = 0.001,
) -> ChiSquareResult:
    """Assert the samples are chi-square-compatible with uniformity.

    Returns the :class:`ChiSquareResult` so callers can make further
    assertions (e.g. on the statistic being finite).
    """
    result = chi_square_uniformity(list(samples), list(population))
    assert not result.rejects_uniformity(alpha=alpha), (
        f"uniformity rejected at alpha={alpha}: chi2={result.statistic:.2f} "
        f"(dof={result.degrees_of_freedom}), p={result.p_value:.2e}, "
        f"n={result.sample_size} over {result.population_size} values"
    )
    return result


def assert_no_catastrophic_bias(
    samples: Sequence[Hashable],
    population: Sequence[Hashable],
    factor: float = 2.0,
) -> ChiSquareResult:
    """Loose sanity check for approximate-by-design samplers.

    Asserts full coverage of the population, no impossible values (finite
    chi-square statistic), and that no value is sampled more than ``factor``
    times its uniform expectation.
    """
    values = list(samples)
    universe = list(dict.fromkeys(population))
    assert set(values) == set(universe), (
        f"samples cover {len(set(values))} of {len(universe)} union values"
    )
    result = chi_square_uniformity(values, universe)
    assert result.statistic < float("inf"), "sampler produced impossible values"
    expected = len(values) / len(universe)
    worst = max(values.count(u) for u in universe)
    assert worst < factor * expected, (
        f"worst value sampled {worst} times vs uniform expectation "
        f"{expected:.1f} (factor {factor})"
    )
    return result


#: A trial either returns an ``(low, high)`` tuple or any object exposing
#: ``ci_low``/``ci_high`` (e.g. :class:`repro.aqp.AggregateEstimate`).
IntervalLike = Union[Tuple[float, float], object]


def assert_ci_coverage(
    trial: Callable[[int], IntervalLike],
    truth: float,
    trials: int = 120,
    min_coverage: float = 0.90,
    seed_base: int = STAT_SEED,
) -> float:
    """Empirical confidence-interval coverage over many fixed-seed trials.

    Runs ``trial(seed)`` for ``trials`` consecutive seeds starting at
    ``seed_base``; each trial returns one confidence interval computed from an
    independent sample stream.  Asserts that the fraction of intervals
    containing ``truth`` is at least ``min_coverage`` (the harness's standard:
    nominal 95% intervals must achieve >= 90% empirically), and returns the
    observed coverage for further assertions.

    Seeds are fixed so the check is deterministic; bumping ``STAT_SEED``
    re-seeds every statistical test at once.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    covered = 0
    worst: list = []
    for i in range(trials):
        interval = trial(seed_base + i)
        if isinstance(interval, tuple):
            low, high = interval
        else:
            low, high = interval.ci_low, interval.ci_high
        if low <= truth <= high:
            covered += 1
        elif len(worst) < 5:
            worst.append((seed_base + i, low, high))
    coverage = covered / trials
    assert coverage >= min_coverage, (
        f"CI coverage {coverage:.3f} ({covered}/{trials}) below the required "
        f"{min_coverage:.2f} for truth={truth!r}; first misses "
        f"(seed, low, high): {worst}"
    )
    return coverage


__all__ = [
    "STAT_SEED",
    "assert_uniform",
    "assert_no_catastrophic_bias",
    "assert_ci_coverage",
]
