"""Shared statistical assertions for sampler tests.

Every sampler test used to hand-roll the same three lines around
``chi_square_uniformity``; these helpers centralize that boilerplate (and its
failure messages) so uniformity checks read identically across
``test_join_sampler``, ``test_online_sampler``, ``test_batch_sampling`` and
``test_dynamic``.

The companion fixed-seed RNG fixture lives in ``conftest.py`` (``stat_rng``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.analysis.uniformity import ChiSquareResult, chi_square_uniformity

#: One shared seed for statistical fixtures: tests stay deterministic, and a
#: future re-seed (if a fixed stream ever lands on an unlucky tail) is one
#: edit instead of a hunt through every test module.
STAT_SEED = 20230717


def assert_uniform(
    samples: Iterable[Hashable],
    population: Sequence[Hashable],
    alpha: float = 0.001,
) -> ChiSquareResult:
    """Assert the samples are chi-square-compatible with uniformity.

    Returns the :class:`ChiSquareResult` so callers can make further
    assertions (e.g. on the statistic being finite).
    """
    result = chi_square_uniformity(list(samples), list(population))
    assert not result.rejects_uniformity(alpha=alpha), (
        f"uniformity rejected at alpha={alpha}: chi2={result.statistic:.2f} "
        f"(dof={result.degrees_of_freedom}), p={result.p_value:.2e}, "
        f"n={result.sample_size} over {result.population_size} values"
    )
    return result


def assert_no_catastrophic_bias(
    samples: Sequence[Hashable],
    population: Sequence[Hashable],
    factor: float = 2.0,
) -> ChiSquareResult:
    """Loose sanity check for approximate-by-design samplers.

    Asserts full coverage of the population, no impossible values (finite
    chi-square statistic), and that no value is sampled more than ``factor``
    times its uniform expectation.
    """
    values = list(samples)
    universe = list(dict.fromkeys(population))
    assert set(values) == set(universe), (
        f"samples cover {len(set(values))} of {len(universe)} union values"
    )
    result = chi_square_uniformity(values, universe)
    assert result.statistic < float("inf"), "sampler produced impossible values"
    expected = len(values) / len(universe)
    worst = max(values.count(u) for u in universe)
    assert worst < factor * expected, (
        f"worst value sampled {worst} times vs uniform expectation "
        f"{expected:.1f} (factor {factor})"
    )
    return result


__all__ = ["STAT_SEED", "assert_uniform", "assert_no_catastrophic_bias"]
