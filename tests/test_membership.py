"""Tests for repro.joins.membership (the hash-probe membership check)."""

import pytest

from repro.joins.executor import join_result_set
from repro.joins.membership import JoinMembershipProber, UnionMembershipIndex


class TestJoinMembershipProber:
    @pytest.mark.parametrize("fixture", ["chain_query", "acyclic_query", "cyclic_query"])
    def test_agrees_with_executor_on_all_join_types(self, fixture, request):
        query = request.getfixturevalue(fixture)
        prober = JoinMembershipProber(query)
        results = join_result_set(query)
        for value in results:
            assert prober.contains(value), f"{value} should be a member of {query.name}"

    def test_rejects_values_not_in_join(self, chain_query):
        prober = JoinMembershipProber(chain_query)
        assert not prober.contains((1, 100, 999))
        assert not prober.contains((42, 100, 7))

    def test_rejects_value_with_wrong_width(self, chain_query):
        prober = JoinMembershipProber(chain_query)
        with pytest.raises(ValueError, match="fields"):
            prober.contains((1, 100))

    def test_cyclic_join_residual_enforced(self, cyclic_query):
        prober = JoinMembershipProber(cyclic_query)
        # (1, 3, 5) is producible by the skeleton but violates the cycle-closing
        # condition (T row for c=5 has a=9, not 1).
        assert not prober.contains((1, 3, 5))
        assert prober.contains((1, 2, 4))

    def test_count_containing(self, union_pair):
        j1, j2 = union_pair
        prober = JoinMembershipProber(j2)
        values = list(join_result_set(j1))
        assert prober.count_containing(values) == 2

    def test_probe_counters_increase(self, chain_query):
        prober = JoinMembershipProber(chain_query)
        prober.contains((1, 100, 7))
        prober.contains((1, 100, 7))
        assert prober.probe_count == 2
        assert prober.lookup_count >= 2


class TestUnionMembershipIndex:
    def test_owner_is_first_containing_join(self, union_triple):
        index = UnionMembershipIndex(union_triple)
        # (1, 100) is in all three joins -> owner is the first.
        assert index.owner((1, 100)) == "J1"
        # (3, 400) only in J2.
        assert index.owner((3, 400)) == "J2"
        # (5, 500) only in J3.
        assert index.owner((5, 500)) == "J3"

    def test_owner_none_for_foreign_value(self, union_triple):
        index = UnionMembershipIndex(union_triple)
        assert index.owner((123, 456)) is None

    def test_containing_joins(self, union_triple):
        index = UnionMembershipIndex(union_triple)
        assert index.containing_joins((1, 100)) == ["J1", "J2", "J3"]
        assert index.containing_joins((2, 300)) == ["J1", "J3"]

    def test_contains_specific_join(self, union_pair):
        index = UnionMembershipIndex(union_pair)
        assert index.contains("J1", (2, 300))
        assert not index.contains("J2", (2, 300))


class TestExhaustiveAgreement:
    def test_prober_matches_executor_over_candidate_space(self, union_pair):
        """For every candidate value in the cross product of observed output
        values, the prober must agree exactly with set membership of the
        executed join."""
        for query in union_pair:
            results = join_result_set(query)
            prober = JoinMembershipProber(query)
            a_values = {v[0] for q in union_pair for v in join_result_set(q)}
            c_values = {v[1] for q in union_pair for v in join_result_set(q)}
            for a in a_values:
                for c in c_values:
                    assert prober.contains((a, c)) == ((a, c) in results)
