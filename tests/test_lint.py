"""Tests for ``repro.lint``: fixtures, suppressions, scratch-copy seeding.

Three layers:

* **fixtures** — known-good/known-bad files under ``tests/lint_fixtures/``
  assert exact rule ids and line numbers per checker;
* **real tree** — ``src/`` and ``tests/`` lint clean (the CI contract);
* **scratch copies** — a deliberate violation of each rule class seeded
  into a copy of ``service.py``/``join_sampler.py`` is caught, proving the
  name-keyed contracts follow the code wherever it lives.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintConfig, Severity, run_lint
from repro.lint.core import parse_suppressions
from repro.lint.reporters import render_json, render_text, write_report
from repro.lint.runner import discover

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
LIBRARY = LintConfig(assume_library=True)


def lint_fixture(name, config=LIBRARY):
    return run_lint([str(FIXTURES / name)], config)


def live_ids_and_lines(result):
    return sorted((f.rule_id, f.line) for f in result.live)


# ------------------------------------------------------------------ fixtures
class TestFixtures:
    def test_known_good_is_clean(self):
        result = lint_fixture("good_clean.py")
        assert result.findings == []
        assert result.exit_code == 0

    def test_rng_rules(self):
        result = lint_fixture("bad_rng.py")
        assert live_ids_and_lines(result) == [
            ("RNG001", 17),
            ("RNG002", 18),
            ("RNG003", 3),
            ("RNG003", 19),
            ("RNG004", 21),
        ]

    def test_epoch_rules(self):
        result = lint_fixture("bad_epoch.py")
        assert live_ids_and_lines(result) == [
            ("EPOCH001", 13),  # sample() never refreshes
            ("EPOCH002", 17),  # sample_batch() refreshes after first use
        ]

    def test_lock_rule(self):
        result = lint_fixture("bad_locks.py")
        assert live_ids_and_lines(result) == [
            ("LOCK001", 13),
            ("LOCK001", 14),
            ("LOCK001", 15),
        ]
        stores = [f for f in result.live if "written" in f.message]
        assert [f.line for f in stores] == [14]

    def test_merge_rules(self):
        result = lint_fixture("bad_merge.py")
        assert live_ids_and_lines(result) == [
            ("MERGE001", 12),  # self.total += — attempts (int counter) exempt
            ("MERGE002", 15),
        ]

    def test_determinism_rules(self):
        result = lint_fixture("bad_determinism.py")
        assert live_ids_and_lines(result) == [
            ("DET001", 7),
            ("DET002", 10),
        ]

    def test_resource_rules(self):
        result = lint_fixture("bad_resources.py")
        assert live_ids_and_lines(result) == [
            ("RES001", 7),
            ("RES002", 12),
        ]

    def test_contract_rules_require_library_paths(self):
        # Without assume_library a fixture path is not library code, so the
        # contract checkers stay silent — how `tests/` lints clean.
        result = lint_fixture("bad_locks.py", LintConfig())
        assert result.findings == []


# -------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_contract(self):
        result = lint_fixture("suppressed.py")
        # Justified inline + justified standalone directives suppress...
        assert sorted((f.rule_id, f.line) for f in result.suppressed) == [
            ("RNG003", 3),
            ("RNG003", 8),
        ]
        for finding in result.suppressed:
            assert finding.justification
        # ...a bare directive suppresses nothing and raises SUP001.
        assert live_ids_and_lines(result) == [
            ("RNG003", 12),
            ("SUP001", 12),
        ]
        assert result.exit_code == 1

    def test_parse_directives(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=RNG001,LOCK001 -- two rules, one why\n"
        )
        assert len(sup) == 1
        assert sup[0].rule_ids == ("RNG001", "LOCK001")
        assert sup[0].justification == "two rules, one why"
        assert sup[0].covered_lines == (1,)  # inline: own line only

    def test_standalone_covers_next_line(self):
        sup = parse_suppressions("# repro-lint: disable=DET001 -- why\ny = 2\n")
        assert sup[0].covered_lines == (1, 2)


# ---------------------------------------------------------------- real tree
class TestRealTree:
    def test_src_and_tests_are_clean(self):
        result = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert [f.location() + " " + f.rule_id for f in result.live] == []
        assert result.exit_code == 0

    def test_discovery_skips_fixture_and_cache_dirs(self):
        files = discover([str(REPO_ROOT / "tests")], ("lint_fixtures", "__pycache__"))
        names = {Path(f).name for f in files}
        assert "bad_rng.py" not in names
        assert "test_lint.py" in names


# ---------------------------------------- seeded violations in scratch copies
def _scratch_copy(tmp_path, relative):
    """Copy a real module to a scratch tree that still counts as library."""
    source = REPO_ROOT / relative
    target = tmp_path / relative  # keeps the src/repro/ path segment
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(source, target)
    return target


def _assert_catches(path, rule_id):
    result = run_lint([str(path)])
    assert rule_id in {f.rule_id for f in result.live}, render_text(result)
    assert result.exit_code == 1


class TestScratchCopySeeding:
    """Each rule class catches a violation planted in a copied real module."""

    def test_pristine_copies_are_clean(self, tmp_path):
        for relative in (
            "src/repro/server/service.py",
            "src/repro/sampling/join_sampler.py",
        ):
            path = _scratch_copy(tmp_path, relative)
            result = run_lint([str(path)])
            assert result.live == [], render_text(result)

    def test_rng_violation_in_service_copy(self, tmp_path):
        path = _scratch_copy(tmp_path, "src/repro/server/service.py")
        path.write_text(
            path.read_text()
            + "\n\nimport numpy as _np\n\n"
            + "def _scratch_stream():\n"
            + "    return _np.random.default_rng()\n"
        )
        _assert_catches(path, "RNG001")

    def test_epoch_violation_in_join_sampler_copy(self, tmp_path):
        path = _scratch_copy(tmp_path, "src/repro/sampling/join_sampler.py")
        text = path.read_text()
        mutated = text.replace(
            "self.refresh()\n        drained = self._block_buffer",
            "drained = self._block_buffer",
        )
        assert mutated != text  # the refresh call we remove must exist
        path.write_text(mutated)
        _assert_catches(path, "EPOCH001")

    def test_lock_violation_in_join_sampler_copy(self, tmp_path):
        path = _scratch_copy(tmp_path, "src/repro/sampling/join_sampler.py")
        text = path.read_text()
        mutated = text.replace(
            "@_locked\n    def pop_buffered(self)",
            "def pop_buffered(self)",
        )
        assert mutated != text
        path.write_text(mutated)
        _assert_catches(path, "LOCK001")

    def test_merge_violation_in_service_copy(self, tmp_path):
        path = _scratch_copy(tmp_path, "src/repro/server/service.py")
        path.write_text(
            path.read_text()
            + "\n\nclass AggregateAccumulator:\n"
            + "    def merge(self, other):\n"
            + "        self.mean += other.mean\n"
        )
        _assert_catches(path, "MERGE001")

    def test_determinism_violation_in_service_copy(self, tmp_path):
        path = _scratch_copy(tmp_path, "src/repro/server/service.py")
        path.write_text(
            path.read_text()
            + "\n\ndef shape_key(parts):\n"
            + "    return (time.time(), tuple(parts))\n"
        )
        _assert_catches(path, "DET001")

    def test_resource_violation_in_service_copy(self, tmp_path):
        path = _scratch_copy(tmp_path, "src/repro/server/service.py")
        path.write_text(
            path.read_text()
            + "\n\ndef _scratch_handle(admission, work):\n"
            + "    ticket = admission.admit(1.0)\n"
            + "    return work()\n"
        )
        _assert_catches(path, "RES001")


# ------------------------------------------------------- reporters and exits
class TestReporting:
    def test_json_report_shape(self, tmp_path):
        result = lint_fixture("bad_merge.py")
        document = json.loads(render_json(result))
        assert document["format_version"] == 1
        assert document["tool"] == "repro.lint"
        rule_ids = {rule["id"] for rule in document["rules"]}
        # Catalogue includes every checker family plus the meta rules.
        for rule_id in (
            "RNG001", "EPOCH001", "LOCK001", "MERGE001",
            "DET001", "RES001", "SUP001", "PARSE001",
        ):
            assert rule_id in rule_ids
        assert document["summary"]["errors"] == 2
        assert document["summary"]["exit_code"] == 1
        assert len(document["findings"]) == 2

        report = tmp_path / "LINT_REPORT.json"
        write_report(result, str(report))
        assert json.loads(report.read_text())["summary"]["errors"] == 2

    def test_parse_error_is_a_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        result = run_lint([str(broken)])
        assert [f.rule_id for f in result.live] == ["PARSE001"]
        assert result.exit_code == 1

    def test_rule_filter(self):
        config = LintConfig(assume_library=True, rules=("MERGE002",))
        result = run_lint([str(FIXTURES / "bad_merge.py")], config)
        assert [f.rule_id for f in result.live] == ["MERGE002"]

    def test_severity_partition(self):
        result = lint_fixture("bad_rng.py")
        assert all(f.severity is Severity.ERROR for f in result.live)


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
        )

    def test_clean_tree_exits_zero(self):
        proc = self._run("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 error(s)" in proc.stdout

    def test_violations_exit_one_and_report(self, tmp_path):
        report = tmp_path / "LINT_REPORT.json"
        proc = self._run(
            "tests/lint_fixtures/bad_locks.py",
            "--assume-library", "--format", "json", "--report", str(report),
        )
        assert proc.returncode == 1
        assert json.loads(report.read_text())["summary"]["errors"] == 3

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RNG004", "EPOCH002", "LOCK001", "MERGE001", "DET002", "RES002"):
            assert rule_id in proc.stdout


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
