"""Tests for repro.sampling.olken (extended Olken join-size bounds)."""

import pytest

from repro.joins.executor import exact_join_size
from repro.joins.join_tree import build_join_tree
from repro.sampling.olken import node_max_degree, olken_refined_bound, olken_upper_bound


class TestOlkenUpperBound:
    @pytest.mark.parametrize("fixture", ["chain_query", "acyclic_query", "cyclic_query"])
    def test_bound_dominates_exact_size(self, fixture, request):
        query = request.getfixturevalue(fixture)
        assert olken_upper_bound(query) >= exact_join_size(query, distinct=False)

    def test_chain_bound_value(self, chain_query):
        # |R| = 3, M_b(S) = 2, M_c(T) = 2  ->  bound = 12
        assert olken_upper_bound(chain_query) == 12.0

    def test_bound_zero_for_empty_relation(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[], s_rows=[(10, 100)])
        assert olken_upper_bound(query) == 0.0

    def test_bound_zero_when_no_joinable_values(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("nojoin", r_rows=[(1, 10)], s_rows=[])
        assert olken_upper_bound(query) == 0.0

    def test_bound_on_tpch_queries(self, uq1_small):
        for query in uq1_small.queries:
            assert olken_upper_bound(query) >= exact_join_size(query, distinct=False)


class TestRefinedBound:
    def test_refined_bound_not_larger_than_max_bound(self, chain_query):
        assert olken_refined_bound(chain_query) <= olken_upper_bound(chain_query)

    def test_refined_bound_positive_for_nonempty_join(self, chain_query):
        assert olken_refined_bound(chain_query) > 0


class TestNodeMaxDegree:
    def test_per_hop_degree(self, chain_query):
        tree = build_join_tree(chain_query)
        assert node_max_degree(chain_query, tree, "S") == 2
        assert node_max_degree(chain_query, tree, "T") == 2

    def test_root_has_no_join_key(self, chain_query):
        tree = build_join_tree(chain_query)
        with pytest.raises(ValueError):
            node_max_degree(chain_query, tree, "R")
