"""Alias-table kernels: construction invariants and draw distributions.

Two layers of guarantees:

* **exact mass accounting** — an alias table is a redistribution of the
  normalized weights over uniform buckets; summing each item's bucket share
  (``prob`` of its own bucket plus ``1 - prob`` of every bucket aliased to
  it) must reproduce the weight distribution to floating-point accuracy,
  for any weight profile (uniform, zipfian, single-heavy, zeros);
* **distribution equivalence** — drawing through the alias table must be
  chi-square-compatible with the inverse-CDF (``searchsorted``) reference
  the batched engine used before, both flat and per-CSR-segment, including
  after per-segment rebuilds (the epoch protocol).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.alias import AliasTable, SegmentedAliasTable, uniform_segment_pick

from tests.stat_helpers import STAT_SEED, assert_uniform


def bucket_mass(table: AliasTable) -> np.ndarray:
    """Each item's total draw probability implied by the prob/alias arrays."""
    mass = np.zeros(table.n)
    np.add.at(mass, np.arange(table.n), table.prob / table.n)
    np.add.at(mass, table.alias, (1 - table.prob) / table.n)
    return mass


WEIGHT_PROFILES = {
    "uniform": np.ones(257),
    "two_point": np.array([0.25, 0.75]),
    "single": np.array([3.5]),
    "one_heavy": np.concatenate([[1e6], np.ones(999)]),
    "zipf": 1.0 / np.arange(1, 2001) ** 1.2,
    "with_zeros": np.array([0.0, 3.0, 0.0, 1.0, 0.0, 2.0, 0.0]),
    "extreme_range": np.array([1e-12, 1.0, 1e12, 1e-12, 3.0]),
    "random": np.random.default_rng(41).random(1500),
}


class TestAliasTableConstruction:
    @pytest.mark.parametrize("profile", sorted(WEIGHT_PROFILES))
    def test_mass_accounting_is_exact(self, profile):
        weights = WEIGHT_PROFILES[profile]
        table = AliasTable(weights)
        expected = weights / weights.sum()
        assert np.abs(bucket_mass(table) - expected).max() < 1e-9

    def test_zero_weight_items_are_never_drawn(self):
        weights = WEIGHT_PROFILES["with_zeros"]
        table = AliasTable(weights)
        draws = table.sample(np.random.default_rng(STAT_SEED), 5000)
        assert not np.isin(draws, np.flatnonzero(weights == 0)).any()

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, -0.5]))
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))
        with pytest.raises(ValueError):
            AliasTable(np.zeros(3)).sample(np.random.default_rng(0), 1)
        with pytest.raises(ValueError):
            AliasTable(np.zeros(0)).sample(np.random.default_rng(0), 1)


class TestAliasVsSearchsorted:
    """The alias draw must match the inverse-CDF reference distribution."""

    def _searchsorted_reference(self, weights, rng, size):
        cumulative = np.cumsum(weights)
        targets = rng.random(size) * cumulative[-1]
        return np.searchsorted(cumulative, targets, side="right")

    @pytest.mark.parametrize("profile", ["zipf", "one_heavy", "random"])
    def test_flat_distribution_matches(self, profile):
        weights = WEIGHT_PROFILES[profile][:64]
        alias_draws = AliasTable(weights).sample(
            np.random.default_rng(STAT_SEED), 20_000
        )
        reference = self._searchsorted_reference(
            weights, np.random.default_rng(STAT_SEED + 1), 20_000
        )
        alias_freq = np.bincount(alias_draws, minlength=len(weights)) / 20_000
        ref_freq = np.bincount(reference, minlength=len(weights)) / 20_000
        expected = weights / weights.sum()
        assert np.abs(alias_freq - expected).max() < 0.02
        assert np.abs(alias_freq - ref_freq).max() < 0.03

    def test_segmented_distribution_matches_reference(self):
        rng_w = np.random.default_rng(7)
        degrees = rng_w.integers(1, 9, size=40)
        offsets = np.concatenate([[0], np.cumsum(degrees)])
        weights = rng_w.random(int(offsets[-1])) + 0.05
        table = SegmentedAliasTable(weights, offsets)
        rng = np.random.default_rng(STAT_SEED)
        slots = rng.integers(0, 40, size=30_000).astype(np.intp)
        picks = table.sample(rng, slots)
        for slot in range(40):
            lo, hi = int(offsets[slot]), int(offsets[slot + 1])
            segment_picks = picks[slots == slot]
            assert ((segment_picks >= lo) & (segment_picks < hi)).all()
            if len(segment_picks) < 200 or hi - lo < 2:
                continue
            freq = np.bincount(segment_picks - lo, minlength=hi - lo) / len(segment_picks)
            expected = weights[lo:hi] / weights[lo:hi].sum()
            assert np.abs(freq - expected).max() < 0.08

    def test_uniform_segments_draw_uniformly(self):
        offsets = np.array([0, 5, 5, 9])
        weights = np.ones(9)
        table = SegmentedAliasTable(weights, offsets)
        # Uniform segments are pre-marked built: no construction work at all.
        assert table._built.all()
        rng = np.random.default_rng(STAT_SEED)
        picks = table.sample(rng, np.zeros(6000, dtype=np.intp))
        assert_uniform(picks.tolist(), list(range(5)))


class TestSegmentRebuild:
    def test_rebuild_segments_is_local(self):
        offsets = np.array([0, 3, 6, 10])
        weights = np.array([1.0, 2.0, 3.0, 5.0, 5.0, 5.0, 1.0, 1.0, 1.0, 7.0])
        table = SegmentedAliasTable(weights, offsets)
        table.ensure_built(np.array([0, 1, 2], dtype=np.intp))
        built_before = table._built.copy()
        assert built_before.all()

        new_weights = weights.copy()
        new_weights[0:3] = [4.0, 0.0, 1.0]
        table.rebuild_segments([0], new_weights)
        # Only slot 0 was invalidated; the others keep their tables.
        assert not table._built[0]
        assert table._built[1] and table._built[2]
        assert table.segment_totals[0] == pytest.approx(5.0)

        rng = np.random.default_rng(STAT_SEED)
        picks = table.sample(rng, np.zeros(10_000, dtype=np.intp))
        freq = np.bincount(picks, minlength=3)[:3] / 10_000
        assert freq[0] == pytest.approx(0.8, abs=0.02)
        assert freq[1] == 0.0
        assert freq[2] == pytest.approx(0.2, abs=0.02)

    def test_rebuild_rejects_shape_change(self):
        table = SegmentedAliasTable(np.ones(4), np.array([0, 2, 4]))
        with pytest.raises(ValueError, match="shape"):
            table.rebuild_segments([0], np.ones(5))

    def test_empty_segments_are_legal(self):
        offsets = np.array([0, 2, 2, 4])  # middle slot emptied by deletions
        table = SegmentedAliasTable(np.ones(4), offsets)
        assert table.segment_totals[1] == 0.0
        picks = table.sample(
            np.random.default_rng(0), np.array([0, 2, 0, 2], dtype=np.intp)
        )
        assert ((picks < 2) | (picks >= 2)).all()


class TestUniformSegmentPick:
    def test_picks_stay_inside_segments(self):
        starts = np.array([0, 10, 20], dtype=np.intp)
        degrees = np.array([10, 5, 1], dtype=np.intp)
        rng = np.random.default_rng(STAT_SEED)
        for _ in range(50):
            picks = uniform_segment_pick(rng, starts, degrees)
            assert ((picks >= starts) & (picks < starts + degrees)).all()

    def test_uniform_within_segment(self):
        starts = np.zeros(8000, dtype=np.intp)
        degrees = np.full(8000, 7, dtype=np.intp)
        picks = uniform_segment_pick(np.random.default_rng(STAT_SEED), starts, degrees)
        assert_uniform(picks.tolist(), list(range(7)))
