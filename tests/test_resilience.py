"""Tests for the fault-tolerant sampling service (repro.resilience).

The load-bearing invariant: **faults never change the answer**.  A shard's
payload is a pure function of (task, seed) — the attempt number feeds only
the fault-injection draws and bookkeeping — so a job that survived injected
crashes, timeouts, kills, or corrupted results merges to a result
bit-identical to the fault-free sequential reference.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aqp import AggregateSpec, OnlineAggregator
from repro.parallel import (
    ParallelSamplerPool,
    parallel_aggregate,
    parallel_sample,
    run_shard,
    sequential_reference,
)
from repro.parallel.shards import verify_shard_result
from repro.resilience import (
    KILL_EXIT_CODE,
    NO_FAULTS,
    CorruptShardResult,
    EmptyResultError,
    FaultAction,
    FaultPlan,
    InjectedFault,
    JobDeadlineExceeded,
    PoisonShardError,
    RetryPolicy,
    ShardCrash,
    ShardError,
    ShardTimeout,
    SupervisionStats,
    fault_plan_from_env,
)
from repro.resilience.supervisor import CooperativeDeadline
from tests.test_parallel import SPEC_SUM, make_chain, make_union, report_key

#: Fast backoff so retry-heavy tests do not sleep their way through CI.
FAST = RetryPolicy(backoff_base=0.001, backoff_cap=0.01)


def merged_reference(tasks):
    results = sequential_reference(tasks)
    merged = results[0].accumulator
    for result in results[1:]:
        merged.merge(result.accumulator)
    return merged


def plan_and_reference(count=60, shards=4, seed=9):
    pool = ParallelSamplerPool(workers=1, execution="thread", fault_plan=NO_FAULTS)
    tasks = pool.plan_tasks(make_chain(), count, seed=seed, spec=SPEC_SUM, shards=shards)
    return tasks, report_key(merged_reference(tasks).estimate())


def run_with_faults(tasks, fault_plan, **pool_kwargs):
    pool_kwargs.setdefault("workers", 3)
    pool_kwargs.setdefault("execution", "thread")
    pool_kwargs.setdefault("retry_policy", FAST)
    pool = ParallelSamplerPool(fault_plan=fault_plan, **pool_kwargs)
    report = pool.aggregate(make_chain(), SPEC_SUM, sum(t.count for t in tasks),
                            seed=9, shards=len(tasks))
    return pool, report_key(report.accumulator.estimate())


class TestFaultPlans:
    def test_action_for_is_deterministic(self):
        plan = FaultPlan(seed=7, rate=0.5, kinds=("raise", "sleep"))
        draws = [plan.action_for(s, a) for s in range(6) for a in range(3)]
        again = [plan.action_for(s, a) for s in range(6) for a in range(3)]
        assert draws == again
        assert any(draws), "a 50% plan should fault somewhere in 18 draws"

    def test_scripted_wins_over_rate(self):
        action = FaultAction("corrupt")
        plan = FaultPlan(seed=7, rate=0.0, scripted={(2, 1): action})
        assert plan.action_for(2, 1) is action
        assert plan.action_for(2, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultAction("explode")
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(kinds=("raise", "nope"))
        with pytest.raises(ValueError):
            FaultPlan(scripted={(-1, 0): FaultAction("raise")})

    def test_env_harness_parsing(self):
        assert fault_plan_from_env({}) is None
        assert fault_plan_from_env({"REPRO_FAULT_RATE": "0"}) is None
        plan = fault_plan_from_env({"REPRO_FAULT_RATE": "0.25"})
        assert plan.rate == 0.25 and plan.seed == 2023 and plan.kinds == ("raise",)
        plan = fault_plan_from_env({
            "REPRO_FAULT_RATE": "0.1",
            "REPRO_FAULT_SEED": "5",
            "REPRO_FAULT_KINDS": "raise, sleep",
        })
        assert plan.seed == 5 and plan.kinds == ("raise", "sleep")

    def test_no_faults_sentinel_is_noop(self):
        assert NO_FAULTS.is_noop()
        assert NO_FAULTS.action_for(0, 0) is None


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_cap=0.5, jitter=0.5, jitter_seed=3)
        series = [policy.backoff_for(4, r) for r in range(1, 6)]
        assert series == [policy.backoff_for(4, r) for r in range(1, 6)]
        for retry, delay in enumerate(series, start=1):
            raw = min(0.1 * 2.0 ** (retry - 1), 0.5)
            assert 0.5 * raw <= delay <= 1.5 * raw

    def test_jitter_desynchronizes_shards(self):
        policy = RetryPolicy(jitter=0.5, jitter_seed=0)
        delays = {policy.backoff_for(s, 1) for s in range(8)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestPayloadInvariance:
    def test_run_shard_payload_ignores_attempt_number(self):
        tasks, _ = plan_and_reference()
        first = run_shard(tasks[1], attempt=0, fault_plan=NO_FAULTS)
        retry = run_shard(tasks[1], attempt=5, fault_plan=NO_FAULTS)
        assert first.worker_attempt == 0 and retry.worker_attempt == 5
        assert first.fingerprint() == retry.fingerprint()

    def test_integrity_check_catches_shard_id_swap(self):
        tasks, _ = plan_and_reference()
        result = run_shard(tasks[0], fault_plan=NO_FAULTS)
        assert verify_shard_result(tasks[0], result) is None
        assert "echo" in verify_shard_result(tasks[1], result)

    def test_integrity_check_catches_payload_mutation(self):
        tasks, _ = plan_and_reference()
        result = run_shard(tasks[0], fault_plan=NO_FAULTS, seal=True)
        result.accepted += 1  # bit-flip after the checksum was sealed
        assert "checksum" in verify_shard_result(tasks[0], result)

    def test_in_process_results_skip_the_checksum(self):
        # No serialization boundary, no fault action: sealing would only tax
        # the fast path, so the auto mode leaves the checksum unset.
        tasks, _ = plan_and_reference()
        result = run_shard(tasks[0], fault_plan=NO_FAULTS)
        assert result.checksum is None
        assert verify_shard_result(tasks[0], result) is None


class TestRetriesPreserveAnswers:
    def test_injected_raise_is_retried_bit_identically(self):
        tasks, reference = plan_and_reference()
        plan = FaultPlan(scripted={(1, 0): FaultAction("raise")})
        pool, key = run_with_faults(tasks, plan)
        assert key == reference
        assert pool.stats.retries == 1 and pool.stats.shard_exceptions == 1

    def test_timed_out_shard_is_retried_bit_identically(self):
        tasks, reference = plan_and_reference()
        plan = FaultPlan(scripted={(2, 0): FaultAction("sleep", duration=5.0)})
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool, key = run_with_faults(tasks, plan, shard_timeout=0.25)
        assert key == reference
        assert pool.stats.shard_timeouts == 1
        assert pool.stats.abandoned_threads == 1
        assert any("forcibly cancelled" in str(w.message) for w in caught), (
            "abandoning an uncancellable thread must warn"
        )

    def test_corrupted_result_is_rejected_and_retried(self):
        tasks, reference = plan_and_reference()
        plan = FaultPlan(scripted={(0, 0): FaultAction("corrupt")})
        pool, key = run_with_faults(tasks, plan)
        assert key == reference
        assert pool.stats.corrupt_results == 1

    def test_ten_percent_chaos_rate_is_bit_identical(self):
        """The acceptance gate: 10% injected faults, answer unchanged."""
        tasks, reference = plan_and_reference(count=120, shards=8)
        plan = FaultPlan(seed=2023, rate=0.1, kinds=("raise",))
        pool, key = run_with_faults(tasks, plan)
        assert key == reference
        assert pool.stats.retries >= 1, "seed 2023 at 10% must inject something"

    def test_sampling_mode_survives_faults_too(self):
        plan = FaultPlan(scripted={(0, 0): FaultAction("raise")})
        clean = parallel_sample(make_chain(), 40, seed=17, workers=2,
                                execution="thread", fault_plan=NO_FAULTS)
        faulty = parallel_sample(make_chain(), 40, seed=17, workers=2,
                                 execution="thread", fault_plan=plan)
        assert faulty.values == clean.values
        assert faulty.sources == clean.sources
        assert faulty.retries == 1 and not faulty.degraded

    def test_union_backend_survives_faults(self):
        queries = make_union()
        clean = parallel_sample(queries, 20, seed=31, workers=2,
                                execution="thread", fault_plan=NO_FAULTS)
        plan = FaultPlan(scripted={(3, 0): FaultAction("raise")})
        faulty = parallel_sample(queries, 20, seed=31, workers=2,
                                 execution="thread", fault_plan=plan)
        assert faulty.values == clean.values


class TestFailureClassification:
    def test_exhausted_retries_reraise_with_attribution(self):
        tasks, _ = plan_and_reference()
        plan = FaultPlan(scripted={
            (1, a): FaultAction("raise", message=f"flaky {a}") for a in range(5)
        })
        pool = ParallelSamplerPool(workers=2, execution="thread",
                                   fault_plan=plan, retry_policy=FAST)
        with pytest.raises(ShardCrash) as excinfo:
            pool.aggregate(make_chain(), SPEC_SUM, 60, seed=9, shards=4)
        message = str(excinfo.value)
        assert "shard 1" in message
        assert "attempt=3" in message
        assert "seed=SeedSequence" in message
        assert "rung=thread" in message
        assert isinstance(excinfo.value.__cause__, InjectedFault), (
            "the original exception must stay chained (traceback attribution)"
        )

    def test_poison_shard_fails_fast(self):
        tasks, _ = plan_and_reference()
        plan = FaultPlan(scripted={
            (2, a): FaultAction("raise", message="deterministic bug") for a in range(5)
        })
        pool = ParallelSamplerPool(workers=2, execution="thread",
                                   fault_plan=plan, retry_policy=FAST)
        with pytest.raises(PoisonShardError) as excinfo:
            pool.aggregate(make_chain(), SPEC_SUM, 60, seed=9, shards=4)
        assert excinfo.value.failure_signature == ("InjectedFault", "deterministic bug")
        # Fail-fast: two identical failures, no third attempt.
        assert pool.stats.poison_shards == 1
        assert pool.stats.attempts <= 2 + (len(tasks) - 1)

    def test_transient_faults_are_not_poison(self):
        """Default injected messages embed the attempt: never misclassified."""
        tasks, reference = plan_and_reference()
        plan = FaultPlan(scripted={(1, 0): FaultAction("raise"),
                                   (1, 1): FaultAction("raise")})
        pool, key = run_with_faults(tasks, plan)
        assert key == reference
        assert pool.stats.poison_shards == 0 and pool.stats.retries == 2

    def test_allow_partial_records_failed_shard(self):
        tasks, reference = plan_and_reference()
        plan = FaultPlan(scripted={
            (3, a): FaultAction("raise", message="dead") for a in range(5)
        })
        pool = ParallelSamplerPool(workers=2, execution="thread", fault_plan=plan,
                                   retry_policy=FAST, allow_partial=True)
        report = pool.aggregate(make_chain(), SPEC_SUM, 60, seed=9, shards=4)
        assert report.degraded
        assert report.failed_shards == [3]
        assert report.completed_shards == 3 and report.planned_shards == 4
        # The partial merge covers fewer attempts: the interval must widen.
        partial = report.accumulator.estimate()
        assert partial.attempts < reference[3]
        assert partial.overall.relative_half_width > 0

    def test_shard_error_taxonomy_is_runtime_error(self):
        for cls in (ShardError, ShardCrash, ShardTimeout, CorruptShardResult,
                    PoisonShardError):
            assert issubclass(cls, RuntimeError)
        assert issubclass(JobDeadlineExceeded, RuntimeError)
        crash = ShardCrash("died", exitcode=KILL_EXIT_CODE, shard_id=4,
                           backend="olken", attempt=1, rung="process")
        assert "exit code 117" in str(crash)
        assert crash.signature()[0] == "ShardCrash"


class TestDeadlines:
    def test_zero_deadline_raises_with_incomplete_shards(self):
        pool = ParallelSamplerPool(workers=2, execution="thread",
                                   job_timeout=0.0, fault_plan=NO_FAULTS)
        with pytest.raises(JobDeadlineExceeded) as excinfo:
            pool.aggregate(make_chain(), SPEC_SUM, 40, seed=9, shards=4)
        assert excinfo.value.completed == 0
        assert excinfo.value.planned == 4
        assert excinfo.value.incomplete_shards == (0, 1, 2, 3)

    def test_zero_deadline_allow_partial_degrades(self):
        pool = ParallelSamplerPool(workers=2, execution="thread", job_timeout=0.0,
                                   allow_partial=True, fault_plan=NO_FAULTS)
        report = pool.aggregate(make_chain(), SPEC_SUM, 40, seed=9, shards=4)
        assert report.degraded and report.deadline_hit
        assert report.completed_shards == 0
        assert report.accumulator.attempts == 0

    def test_thread_path_enforces_job_timeout(self):
        """Pre-resilience, job_timeout was silently ignored off the process
        path; now every execution mode honors it."""
        plan = FaultPlan(scripted={(0, a): FaultAction("sleep", duration=3.0)
                                   for a in range(5)})
        pool = ParallelSamplerPool(workers=2, execution="thread",
                                   job_timeout=0.4, fault_plan=plan,
                                   retry_policy=FAST)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(JobDeadlineExceeded):
                pool.aggregate(make_chain(), SPEC_SUM, 40, seed=9, shards=2)

    def test_cooperative_deadline_raises_shard_timeout(self):
        deadline = CooperativeDeadline(0.0, shard_id=1, backend="olken",
                                       seed=None, attempt=0, rung="thread",
                                       timeout=0.5)
        with pytest.raises(ShardTimeout, match="stage"):
            deadline.check("unit test")

    def test_online_aggregator_deadline(self):
        aggregator = OnlineAggregator(make_chain(), SPEC_SUM, seed=5)
        with pytest.raises(JobDeadlineExceeded, match="deadline"):
            aggregator.until(0.05, deadline=0.0)

    def test_online_aggregator_deadline_partial(self):
        # With samples already accepted, a deadline expiry under
        # allow_partial degrades honestly ...
        aggregator = OnlineAggregator(make_chain(), SPEC_SUM, seed=5)
        aggregator.step(64)
        report = aggregator.until(1e-9, deadline=0.0, allow_partial=True)
        assert report.degraded
        assert report.to_dict()["degraded"] is True
        assert aggregator.accumulator.accepted > 0

    def test_online_aggregator_empty_partial_refused(self):
        # ... but a budget that expires before a single accepted sample has
        # no honest partial answer: zero samples would mean a zero-width CI
        # around 0.0 and a 0/0 achieved error.  Explicit error instead.
        aggregator = OnlineAggregator(make_chain(), SPEC_SUM, seed=5)
        with pytest.raises(EmptyResultError, match="no partial estimate"):
            aggregator.until(0.05, deadline=0.0, allow_partial=True)
        assert aggregator.accumulator.accepted == 0


class TestProcessRungResilience:
    """Spawn-based workers; kept small (interpreter start-up per attempt)."""

    def test_killed_worker_degrades_and_answer_is_unchanged(self):
        tasks, reference = plan_and_reference(count=24, shards=2, seed=41)
        plan = FaultPlan(scripted={(0, 0): FaultAction("kill"),
                                   (0, 1): FaultAction("kill")})
        pool = ParallelSamplerPool(workers=2, execution="process",
                                   fault_plan=plan, retry_policy=FAST)
        report = pool.aggregate(make_chain(), SPEC_SUM, 24, seed=41, shards=2)
        assert report_key(report.accumulator.estimate()) == reference
        assert pool.stats.shard_crashes == 2
        assert pool.stats.degradations == 1, "two kills walk down the ladder"
        assert pool.stats.rungs.get("thread", 0) >= 1

    def test_kill_fault_degrades_to_raise_in_threads(self):
        # In a thread rung os._exit would kill the coordinator; the harness
        # must degrade the kill to a raise instead of taking down the test.
        tasks, reference = plan_and_reference()
        plan = FaultPlan(scripted={(1, 0): FaultAction("kill")})
        pool, key = run_with_faults(tasks, plan)
        assert key == reference
        assert pool.stats.shard_exceptions == 1


class TestReportCounters:
    def test_fault_free_run_reports_clean_counters(self):
        report = parallel_sample(make_chain(), 40, seed=17, workers=2,
                                 execution="thread", fault_plan=NO_FAULTS)
        assert report.retries == 0 and report.shard_crashes == 0
        assert not report.degraded
        assert report.completed_shards == report.planned_shards == report.shards

    def test_aggregate_report_carries_degraded_fields(self):
        report = parallel_aggregate(make_chain(), SPEC_SUM, 40, seed=9,
                                    workers=2, execution="thread",
                                    fault_plan=NO_FAULTS)
        assert report.degraded is False
        assert report.completed_shards == report.planned_shards
        payload = report.to_dict()
        assert payload["degraded"] is False
        assert payload["achieved_rel_error"] is not None

    def test_supervision_stats_merge(self):
        a = SupervisionStats(attempts=3, retries=1, completed=2, rungs={"thread": 3})
        b = SupervisionStats(attempts=2, shard_crashes=1, completed=4,
                             rungs={"thread": 1, "process": 1})
        a.merge(b)
        assert a.attempts == 5 and a.retries == 1 and a.shard_crashes == 1
        assert a.completed == 4, "completed reflects the latest run"
        assert a.rungs == {"thread": 4, "process": 1}


class TestSequentialReferenceUnderChaos:
    def test_reference_retries_injected_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.1")
        monkeypatch.setenv("REPRO_FAULT_SEED", "2023")
        pool = ParallelSamplerPool(workers=1, execution="thread", fault_plan=NO_FAULTS)
        tasks = pool.plan_tasks(make_chain(), 120, seed=9, spec=SPEC_SUM, shards=8)
        chaos = sequential_reference(tasks)  # run_shard falls back to the env plan
        clean = [run_shard(t, fault_plan=NO_FAULTS) for t in tasks]
        assert [r.fingerprint() for r in chaos] == [r.fingerprint() for r in clean]


@st.composite
def fault_plans(draw):
    """Eventually-successful scripted plans: attempts >= 2 are never faulted
    (so the default retry budget of 2 always reaches a clean attempt), and
    poison signatures are impossible (default messages embed the attempt)."""
    scripted = {}
    for shard in range(4):
        for attempt in range(2):
            kind = draw(st.sampled_from(["none", "raise", "corrupt", "kill"]))
            if kind != "none":
                scripted[(shard, attempt)] = FaultAction(kind)
    return FaultPlan(scripted=scripted)


class TestFaultProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=fault_plans(), workers=st.integers(min_value=1, max_value=4))
    def test_any_recoverable_fault_plan_preserves_the_answer(self, plan, workers):
        tasks, reference = plan_and_reference()
        pool = ParallelSamplerPool(workers=workers, execution="thread",
                                   fault_plan=plan, retry_policy=FAST)
        report = pool.aggregate(make_chain(), SPEC_SUM, 60, seed=9, shards=4)
        assert report_key(report.accumulator.estimate()) == reference
        assert not report.degraded
