"""Tests for repro.relational.operators (ground-truth physical operators)."""

import pytest

from repro.relational.operators import (
    difference,
    disjoint_union,
    hash_join,
    intersection,
    natural_join,
    projection,
    selection,
    set_union,
)
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation


@pytest.fixture
def left() -> Relation:
    return Relation("L", ["a", "b"], [(1, 10), (2, 20), (3, 10)])


@pytest.fixture
def right() -> Relation:
    return Relation("R", ["b", "c"], [(10, "x"), (10, "y"), (30, "z")])


class TestHashJoin:
    def test_join_produces_matching_pairs(self, left, right):
        joined = hash_join(left, right, "b", "b")
        # rows with b=10 on both sides: (1,10) and (3,10) each join 2 right rows.
        assert len(joined) == 4
        assert set(joined.schema.names) >= {"a", "b", "c"}

    def test_join_no_matches(self, left):
        empty_right = Relation("R", ["b", "c"], [(99, "x")])
        assert len(hash_join(left, empty_right, "b", "b")) == 0

    def test_name_clash_renamed(self, left):
        other = Relation("other", ["a", "b"], [(1, 10)])
        joined = hash_join(left, other, "b", "b")
        assert "other.a" in joined.schema.names
        assert "other.b" in joined.schema.names

    def test_natural_join_on_shared_attribute(self, left, right):
        joined = natural_join(left, right)
        assert len(joined) == 4
        assert joined.schema.names == ("a", "b", "c")

    def test_natural_join_requires_common_attribute(self, left):
        other = Relation("o", ["z"], [(1,)])
        with pytest.raises(ValueError):
            natural_join(left, other)


class TestSelectionProjection:
    def test_selection(self, left):
        assert len(selection(left, Comparison("b", "==", 10))) == 2

    def test_projection_keeps_duplicates(self, left):
        projected = projection(left, ["b"])
        assert len(projected) == 3
        assert projected.schema.names == ("b",)


class TestSetOperations:
    def make(self, name, rows):
        return Relation(name, ["a", "b"], rows)

    def test_set_union_removes_duplicates(self):
        u = set_union([self.make("x", [(1, 1), (2, 2)]), self.make("y", [(2, 2), (3, 3)])])
        assert sorted(u.rows) == [(1, 1), (2, 2), (3, 3)]

    def test_disjoint_union_keeps_duplicates(self):
        u = disjoint_union([self.make("x", [(1, 1)]), self.make("y", [(1, 1)])])
        assert len(u) == 2

    def test_intersection(self):
        i = intersection([self.make("x", [(1, 1), (2, 2)]), self.make("y", [(2, 2)])])
        assert i.rows == [(2, 2)]

    def test_intersection_empty_when_disjoint(self):
        i = intersection([self.make("x", [(1, 1)]), self.make("y", [(2, 2)])])
        assert len(i) == 0

    def test_difference(self):
        d = difference(self.make("x", [(1, 1), (2, 2)]), self.make("y", [(2, 2)]))
        assert d.rows == [(1, 1)]

    def test_union_requires_aligned_schemas(self):
        with pytest.raises(ValueError, match="union-compatible"):
            set_union([self.make("x", [(1, 1)]), Relation("y", ["z", "w"], [(1, 1)])])

    def test_set_union_deduplicates_within_single_input(self):
        u = set_union([self.make("x", [(1, 1), (1, 1)])])
        assert len(u) == 1
