"""Tests for repro.joins.splitting (the splitting method, §5.2 / §8.1)."""

import pytest

from repro.joins.splitting import build_split_chain, build_split_chains
from repro.joins.template import Template, find_standard_template


class TestSplitChainStructure:
    def test_chain_query_split_against_its_natural_template(self, chain_query):
        template = Template(("a", "c", "d"), 0.0)
        chain = build_split_chain(chain_query, template)
        assert len(chain) == 2
        first, second = chain.relations
        assert (first.first, first.second) == ("a", "c")
        assert (second.first, second.second) == ("c", "d")
        # 'a' lives in R and 'c' in S -> estimated (multi-source) relation;
        # 'c' and 'd' -> S and T -> estimated as well.
        assert not first.is_materializable
        assert len(chain.fake_joins) == 1

    def test_materializable_split_relation(self, acyclic_query):
        # Output attributes: k (C), y (D), z (E).  Pair (k, y): k is in C and D;
        # the output source of k is C, so the pair spans C and D.
        template = Template(("y", "k", "z"), 0.0)
        chain = build_split_chain(acyclic_query, template)
        assert len(chain) == 2

    def test_fake_join_detection(self, uq3_small):
        # In UQ3's J_C the denormalized custsupp relation holds most output
        # attributes, so consecutive template pairs drawn from it are fake joins.
        template = find_standard_template(uq3_small.queries)
        chains = build_split_chains(uq3_small.queries, template=template)
        by_name = {c.query_name: c for c in chains}
        assert any(by_name["UQ3_JC"].fake_joins), (
            "expected at least one fake join in the denormalized UQ3_JC chain"
        )

    def test_template_mismatch_raises(self, chain_query):
        with pytest.raises(ValueError, match="not produced"):
            build_split_chain(chain_query, Template(("a", "zzz"), 0.0))


class TestSplitRelationStatistics:
    def test_materializable_degrees_match_relation(self, union_pair):
        j1 = union_pair[0]
        template = Template(("a", "c"), 0.0)
        chain = build_split_chain(j1, template)
        assert len(chain) == 1
        split = chain.relations[0]
        # 'a' is the key of R (degree 1 per value).
        assert split.degree("a", 1) >= 1.0
        assert split.degree("a", 999) == 0.0
        assert split.max_degree("a") >= 1.0

    def test_estimated_degrees_are_upper_bounds(self, chain_query):
        """Estimated split-relation degrees must dominate the true degrees of
        the corresponding pair in the executed join."""
        from repro.joins.executor import execute_join

        template = Template(("a", "c", "d"), 0.0)
        chain = build_split_chain(chain_query, template)
        first = chain.relations[0]  # pair (a, c)

        results = execute_join(chain_query)
        # true degree of each 'c' value within the (a, c) projection
        from collections import Counter

        true_c_degree = Counter(value[1] for value in results)
        for c_value, true_degree in true_c_degree.items():
            assert first.degree("c", c_value) >= true_degree

    def test_unknown_attribute_raises(self, union_pair):
        chain = build_split_chain(union_pair[0], Template(("a", "c"), 0.0))
        with pytest.raises(KeyError):
            chain.relations[0].degree("zzz", 1)

    def test_size_bound_dominates_projection_size(self, chain_query):
        from repro.joins.executor import execute_join

        template = Template(("a", "c", "d"), 0.0)
        chain = build_split_chain(chain_query, template)
        results = execute_join(chain_query)
        distinct_pairs = {(v[0], v[1]) for v in results}
        assert chain.relations[0].size_bound >= len(distinct_pairs)


class TestBuildSplitChains:
    def test_shared_template_alignment(self, uq3_small):
        chains = build_split_chains(uq3_small.queries)
        lengths = {len(c) for c in chains}
        assert len(lengths) == 1, "all split chains must have the same length"
        templates = {c.template.attributes for c in chains}
        assert len(templates) == 1

    def test_join_attribute_helper(self, chain_query):
        chain = build_split_chain(chain_query, Template(("a", "c", "d"), 0.0))
        assert chain.join_attribute(0) == "c"
