"""Tests for the warm-up estimators: exact, histogram-based, and random-walk."""

import pytest

from repro.estimation.exact import FullJoinUnion, FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.random_walk import RandomWalkUnionEstimator
from repro.joins.executor import (
    exact_join_size,
    exact_overlap_size,
    exact_union_size,
)


class TestFullJoinUnionEstimator:
    def test_matches_executor_on_toy_union(self, union_triple):
        estimator = FullJoinUnionEstimator(union_triple)
        params = estimator.estimate()
        assert params.union_size == exact_union_size(union_triple)
        for query in union_triple:
            assert params.join_sizes[query.name] == exact_join_size(query)
        assert params.overlaps[frozenset(["J1", "J2"])] == exact_overlap_size(union_triple[:2])

    def test_theorem3_union_matches_direct_union(self, union_triple):
        params = FullJoinUnionEstimator(union_triple).estimate()
        assert params.metadata["union_size_theorem3"] == pytest.approx(params.union_size)

    def test_cover_sizes_sum_to_union(self, union_triple):
        params = FullJoinUnionEstimator(union_triple).estimate()
        assert sum(params.cover_sizes.values()) == pytest.approx(params.union_size)

    def test_alias_exists(self):
        assert FullJoinUnion is FullJoinUnionEstimator

    def test_result_set_access(self, union_pair):
        estimator = FullJoinUnionEstimator(union_pair)
        assert estimator.result_set("J1") == {(1, 100), (1, 200), (2, 300)}

    def test_works_on_tpch_workload(self, uq1_small):
        params = FullJoinUnionEstimator(uq1_small.queries).estimate()
        assert params.union_size == exact_union_size(uq1_small.queries)
        assert params.union_size <= params.disjoint_union_size()


class TestHistogramUnionEstimator:
    def test_join_size_methods(self, union_pair):
        ew = HistogramUnionEstimator(union_pair, join_size_method="ew")
        eo = HistogramUnionEstimator(union_pair, join_size_method="eo")
        for query in union_pair:
            assert ew.join_size(query) == exact_join_size(query, distinct=False)
            assert eo.join_size(query) >= ew.join_size(query)

    def test_invalid_options_rejected(self, union_pair):
        with pytest.raises(ValueError):
            HistogramUnionEstimator(union_pair, join_size_method="xx")
        with pytest.raises(ValueError):
            HistogramUnionEstimator(union_pair, refinement="median")
        with pytest.raises(ValueError):
            HistogramUnionEstimator(union_pair, mode="magic")

    def test_overlap_bound_dominates_exact_overlap_direct_mode(self, union_triple):
        estimator = HistogramUnionEstimator(union_triple, join_size_method="ew", mode="direct")
        for pair in ([0, 1], [0, 2], [1, 2], [0, 1, 2]):
            queries = [union_triple[i] for i in pair]
            assert estimator.overlap(queries) >= exact_overlap_size(queries)

    def test_overlap_bound_dominates_exact_overlap_on_uq1(self, uq1_small):
        estimator = HistogramUnionEstimator(uq1_small.queries, join_size_method="ew")
        queries = uq1_small.queries[:2]
        assert estimator.overlap(queries) >= exact_overlap_size(queries)

    def test_overlap_never_exceeds_smallest_join(self, union_triple):
        estimator = HistogramUnionEstimator(union_triple, join_size_method="ew")
        bound = estimator.overlap(union_triple)
        assert bound <= min(estimator.join_size(q) for q in union_triple)

    def test_average_refinement_not_larger_than_max(self, uq1_small):
        maximum = HistogramUnionEstimator(uq1_small.queries, refinement="max")
        average = HistogramUnionEstimator(uq1_small.queries, refinement="average")
        queries = uq1_small.queries[:2]
        assert average.overlap(queries) <= maximum.overlap(queries) + 1e-9

    def test_split_mode_used_for_heterogeneous_union(self, uq3_small):
        estimator = HistogramUnionEstimator(uq3_small.queries, join_size_method="ew")
        params = estimator.estimate()
        assert params.union_size > 0
        assert estimator.template is not None

    def test_estimate_produces_complete_parameters(self, union_triple):
        params = HistogramUnionEstimator(union_triple, join_size_method="ew").estimate()
        assert set(params.join_sizes) == {"J1", "J2", "J3"}
        assert set(params.cover_sizes) == {"J1", "J2", "J3"}
        assert params.union_size >= max(params.join_sizes.values())
        assert params.union_size <= sum(params.join_sizes.values())
        assert params.method == "histogram"


class TestRandomWalkUnionEstimator:
    def test_join_sizes_close_to_exact(self, union_triple):
        estimator = RandomWalkUnionEstimator(union_triple, walks_per_join=800, seed=3)
        for query in union_triple:
            assert estimator.join_size(query) == pytest.approx(
                exact_join_size(query, distinct=False), rel=0.3
            )

    def test_overlap_estimate_close_to_exact(self, union_triple):
        estimator = RandomWalkUnionEstimator(union_triple, walks_per_join=1500, seed=5)
        estimate = estimator.overlap_estimate(union_triple[:2])
        assert estimate.value == pytest.approx(exact_overlap_size(union_triple[:2]), abs=1.0)
        assert 0.0 <= estimate.ratio <= 1.0
        assert estimate.walks > 0

    def test_exact_join_sizes_can_be_injected(self, union_pair):
        sizes = {q.name: float(exact_join_size(q)) for q in union_pair}
        estimator = RandomWalkUnionEstimator(
            union_pair, walks_per_join=400, seed=7, exact_join_sizes=sizes
        )
        for query in union_pair:
            assert estimator.join_size(query) == sizes[query.name]

    def test_union_size_close_to_exact_on_uq1(self, uq1_small):
        estimator = RandomWalkUnionEstimator(uq1_small.queries, walks_per_join=600, seed=11)
        params = estimator.estimate()
        exact = exact_union_size(uq1_small.queries)
        assert params.union_size == pytest.approx(exact, rel=0.35)

    def test_collected_samples_available_for_reuse(self, union_pair):
        estimator = RandomWalkUnionEstimator(union_pair, walks_per_join=200, seed=13)
        estimator.prepare()
        samples = estimator.collected_samples("J1")
        assert samples
        assert all(s.query_name == "J1" and s.probability > 0 for s in samples)
        # all_collected_samples returns copies keyed by join name
        everything = estimator.all_collected_samples()
        assert set(everything) == {"J1", "J2"}

    def test_overlap_estimate_requires_two_joins(self, union_pair):
        estimator = RandomWalkUnionEstimator(union_pair, walks_per_join=100, seed=1)
        with pytest.raises(ValueError):
            estimator.overlap_estimate(union_pair[:1])

    def test_invalid_walk_budget(self, union_pair):
        with pytest.raises(ValueError):
            RandomWalkUnionEstimator(union_pair, walks_per_join=0)

    def test_size_estimate_exposes_confidence_interval(self, union_pair):
        estimator = RandomWalkUnionEstimator(union_pair, walks_per_join=300, seed=17)
        estimator.prepare()
        estimate = estimator.size_estimate("J1")
        assert estimate.walks > 0
        assert estimate.half_width >= 0.0
