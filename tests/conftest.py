"""Shared fixtures: tiny hand-checkable joins, overlapping unions, and small
TPC-H workloads.

The hand-built fixtures are small enough that expected join results, overlaps
and union sizes can be verified by eye; the TPC-H fixtures are session-scoped
so that integration tests reuse one generated dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.tpch.workloads import build_uq1, build_uq2, build_uq3

from tests.stat_helpers import STAT_SEED


# ------------------------------------------------------------------ statistics
@pytest.fixture
def stat_rng() -> np.random.Generator:
    """Fixed-seed generator for statistical tests (see tests/stat_helpers.py)."""
    return np.random.default_rng(STAT_SEED)


# --------------------------------------------------------------------- relations
@pytest.fixture
def relation_r() -> Relation:
    """R(a, b) = {(1,10), (2,20), (3,10)}."""
    return Relation("R", ["a", "b"], [(1, 10), (2, 20), (3, 10)])


@pytest.fixture
def relation_s() -> Relation:
    """S(b, c) = {(10,100), (10,200), (20,300)}."""
    return Relation("S", ["b", "c"], [(10, 100), (10, 200), (20, 300)])


@pytest.fixture
def relation_t() -> Relation:
    """T(c, d) = {(100,7), (200,8), (300,9), (300,10)}."""
    return Relation("T", ["c", "d"], [(100, 7), (200, 8), (300, 9), (300, 10)])


# ----------------------------------------------------------------------- queries
def make_chain_query(
    name: str,
    r_rows,
    s_rows,
    t_rows=None,
    output=("a", "c"),
) -> JoinQuery:
    """Helper: chain join R(a,b) ⋈ S(b,c) [⋈ T(c,d)] with configurable rows."""
    relations = [
        Relation("R", ["a", "b"], r_rows),
        Relation("S", ["b", "c"], s_rows),
    ]
    conditions = [JoinCondition("R", "b", "S", "b")]
    sources = {"a": ("R", "a"), "b": ("R", "b"), "c": ("S", "c")}
    if t_rows is not None:
        relations.append(Relation("T", ["c", "d"], t_rows))
        conditions.append(JoinCondition("S", "c", "T", "c"))
        sources["d"] = ("T", "d")
    outputs = [OutputAttribute(o, *sources[o]) for o in output]
    return JoinQuery(name, relations, conditions, outputs)


@pytest.fixture
def chain_query(relation_r, relation_s, relation_t) -> JoinQuery:
    """R ⋈ S ⋈ T, output (a, c, d).

    Expected results: R rows with b=10 join S rows (10,100),(10,200) and then T:
      (1,100,7), (1,200,8), (3,100,7), (3,200,8),
      (2,300,9), (2,300,10)            -> 6 results, all distinct.
    """
    return JoinQuery(
        "chain3",
        [relation_r, relation_s, relation_t],
        [JoinCondition("R", "b", "S", "b"), JoinCondition("S", "c", "T", "c")],
        [
            OutputAttribute("a", "R", "a"),
            OutputAttribute("c", "S", "c"),
            OutputAttribute("d", "T", "d"),
        ],
    )


@pytest.fixture
def acyclic_query() -> JoinQuery:
    """Star join: center C(k, x) with children D(k, y) and E(x, z).

    C = {(1,5), (2,6)}, D = {(1,'d1'), (1,'d2'), (2,'d3')}, E = {(5,'e1'), (6,'e2'), (6,'e3')}
    Results (k, y, z):
      (1,d1,e1), (1,d2,e1), (2,d3,e2), (2,d3,e3)   -> 4 results.
    """
    center = Relation("C", ["k", "x"], [(1, 5), (2, 6)])
    d = Relation("D", ["k", "y"], [(1, "d1"), (1, "d2"), (2, "d3")])
    e = Relation("E", ["x", "z"], [(5, "e1"), (6, "e2"), (6, "e3")])
    return JoinQuery(
        "star",
        [center, d, e],
        [JoinCondition("C", "k", "D", "k"), JoinCondition("C", "x", "E", "x")],
        [
            OutputAttribute("k", "C", "k"),
            OutputAttribute("y", "D", "y"),
            OutputAttribute("z", "E", "z"),
        ],
    )


@pytest.fixture
def cyclic_query() -> JoinQuery:
    """Triangle join R(a,b) ⋈ S(b,c) ⋈ T(c,a) closing the cycle on ``a``.

    R = {(1,2), (1,3), (7,2)}, S = {(2,4), (3,5)}, T = {(4,1), (5,9), (4,7)}
    Candidate skeleton results (R ⋈ S ⋈ T on b then c):
      (1,2,4) with T rows a=1 and a=7 -> residual a must equal R.a=1 -> keeps (4,1)
      (1,3,5) with T row a=9          -> residual fails
      (7,2,4) with T rows a=1, a=7    -> keeps (4,7)
    Final results (a, b, c): (1,2,4), (7,2,4)  -> 2 results.
    """
    r = Relation("R", ["a", "b"], [(1, 2), (1, 3), (7, 2)])
    s = Relation("S", ["b", "c"], [(2, 4), (3, 5)])
    t = Relation("T", ["c", "a"], [(4, 1), (5, 9), (4, 7)])
    return JoinQuery(
        "triangle",
        [r, s, t],
        [
            JoinCondition("R", "b", "S", "b"),
            JoinCondition("S", "c", "T", "c"),
            JoinCondition("T", "a", "R", "a"),
        ],
        [
            OutputAttribute("a", "R", "a"),
            OutputAttribute("b", "R", "b"),
            OutputAttribute("c", "S", "c"),
        ],
    )


# ------------------------------------------------------------------- toy unions
@pytest.fixture
def union_pair() -> list[JoinQuery]:
    """Two overlapping 2-relation chain joins with hand-checkable sizes.

    J1 output values: (1,100), (1,200), (2,300)            |J1| = 3
    J2 output values: (1,100), (1,200), (3,400)            |J2| = 3
    Overlap = {(1,100), (1,200)} = 2, union = 4.
    """
    j1 = make_chain_query(
        "J1",
        r_rows=[(1, 10), (2, 20)],
        s_rows=[(10, 100), (10, 200), (20, 300)],
    )
    j2 = make_chain_query(
        "J2",
        r_rows=[(1, 10), (3, 30)],
        s_rows=[(10, 100), (10, 200), (30, 400)],
    )
    return [j1, j2]


@pytest.fixture
def union_triple() -> list[JoinQuery]:
    """Three overlapping 2-relation chain joins.

    J1: (1,100), (1,200), (2,300)
    J2: (1,100), (1,200), (3,400)
    J3: (1,100), (2,300), (5,500)
    Union = {(1,100),(1,200),(2,300),(3,400),(5,500)}   |U| = 5
    """
    j1 = make_chain_query(
        "J1", r_rows=[(1, 10), (2, 20)], s_rows=[(10, 100), (10, 200), (20, 300)]
    )
    j2 = make_chain_query(
        "J2", r_rows=[(1, 10), (3, 30)], s_rows=[(10, 100), (10, 200), (30, 400)]
    )
    j3 = make_chain_query(
        "J3", r_rows=[(1, 10), (2, 20), (5, 50)],
        s_rows=[(10, 100), (20, 300), (50, 500)],
    )
    return [j1, j2, j3]


# --------------------------------------------------------------- TPC-H workloads
@pytest.fixture(scope="session")
def uq1_small():
    """UQ1 at a very small scale (shared across the whole test session)."""
    return build_uq1(scale_factor=0.0005, overlap_scale=0.3, n_joins=3, seed=42)


@pytest.fixture(scope="session")
def uq2_small():
    return build_uq2(scale_factor=0.0005, seed=42)


@pytest.fixture(scope="session")
def uq3_small():
    return build_uq3(scale_factor=0.0005, overlap_scale=0.3, seed=42)
