"""The zero-object SampleBlock pipeline: block/batch equivalence end to end.

The contract of the columnar pipeline is that boxing is a *view*: for a
fixed seed, :meth:`JoinSampler.sample_block` and :meth:`JoinSampler.sample_batch`
describe the identical draw sequence (pinned bit-exactly, Hypothesis-driven,
under both EW and EO backends), and :meth:`AggregateAccumulator.ingest_block`
over block columns stores bit-identical estimator state to
:meth:`AggregateAccumulator.observe` over the boxed equivalents — so the
exactly-rounded merge law survives the zero-object rewiring, sequential and
parallel alike.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aqp import AggregateAccumulator, AggregateSpec
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.executor import join_result_set
from repro.joins.query import JoinQuery
from repro.parallel import ParallelSamplerPool, sequential_reference
from repro.relational.relation import Relation
from repro.sampling.blocks import SampleBlock
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import WanderJoin

from tests.conftest import make_chain_query


def fresh_chain():
    """A small skewed chain join, rebuilt per example (relations cache state)."""
    return make_chain_query(
        "chain",
        r_rows=[(1, 10), (2, 10), (3, 20), (4, 20), (5, 20), (6, 30)],
        s_rows=[(10, 100), (10, 101), (10, 102), (20, 200), (30, 300), (30, 301)],
    )


# ------------------------------------------------------------------ property
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    count=st.integers(1, 60),
    weights=st.sampled_from(["ew", "eo"]),
)
def test_block_and_batch_are_bit_identical(seed, count, weights):
    """Same seed ⇒ sample_block and sample_batch describe the same draws."""
    query = fresh_chain()
    block = JoinSampler(query, weights=weights, seed=seed).sample_block(count)
    draws = JoinSampler(query, weights=weights, seed=seed).sample_batch(count)
    assert len(block) == count == len(draws)
    assert block.values(query) == [d.value for d in draws]
    for i, draw in enumerate(draws):
        for name in block.relation_order:
            assert int(block.positions[name][i]) == draw.assignment[name]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), count=st.integers(1, 40))
def test_ingest_block_matches_observe_bit_exactly(seed, count):
    """observe(boxed) and ingest_block(columns) store identical state."""
    query = fresh_chain()
    spec = AggregateSpec("avg", attribute="c", group_by="a")
    sampler = JoinSampler(query, weights="ew", seed=seed)
    block = sampler.sample_block(count)

    boxed = AggregateAccumulator(spec, query.output_schema)
    boxed.observe(block.values(query), attempts=block.attempts, weight=block.weight)
    columnar = AggregateAccumulator(spec, query.output_schema)
    columnar.ingest_block(
        block.value_columns(query), attempts=block.attempts, weight=block.weight
    )

    boxed_report = boxed.estimate()
    columnar_report = columnar.estimate()
    assert set(boxed_report.estimates) == set(columnar_report.estimates)
    for group, estimate in boxed_report.estimates.items():
        assert columnar_report.estimates[group] == estimate


# --------------------------------------------------------------- block basics
class TestSampleBlock:
    def test_concat_split_roundtrip(self, chain_query):
        sampler = JoinSampler(chain_query, seed=3)
        a = sampler.sample_block(5)
        b = sampler.sample_block(7)
        merged = SampleBlock.concat([a, b])
        assert len(merged) == 12
        assert merged.attempts == a.attempts + b.attempts
        head, tail = merged.split(5)
        assert len(head) == 5 and len(tail) == 7
        assert head.attempts == merged.attempts and tail.attempts == 0
        assert merged.values(chain_query) == head.values(chain_query) + tail.values(
            chain_query
        )

    def test_block_values_are_join_members(self, chain_query):
        population = join_result_set(chain_query)
        block = JoinSampler(chain_query, seed=5).sample_block(50)
        assert set(block.values(chain_query)) <= population

    def test_empty_block(self, chain_query):
        sampler = JoinSampler(chain_query, seed=5)
        state = sampler.rng.bit_generator.state
        block = sampler.sample_block(0)
        assert len(block) == 0 and block.attempts == 0
        assert sampler.rng.bit_generator.state == state
        assert block.values(chain_query) == []

    def test_blocks_pickle_cheaply(self, chain_query):
        block = JoinSampler(chain_query, seed=7).sample_block(64)
        payload = pickle.dumps(block)
        restored = pickle.loads(payload)
        assert restored.values(chain_query) == block.values(chain_query)
        # A boxed equivalent drags dicts and tuples through pickle; the
        # struct-of-arrays payload must stay well under it.
        boxed = pickle.dumps(block.to_draws(chain_query))
        assert len(payload) < len(boxed)

    def test_block_weight_is_total_weight(self, chain_query):
        sampler = JoinSampler(chain_query, weights="ew", seed=9)
        block = sampler.sample_block(10)
        assert block.weight == sampler.weight_function.total_weight

    def test_parallel_block_concatenates_in_shard_order(self, chain_query):
        first = JoinSampler(chain_query, seed=13, parallelism=3)
        second = JoinSampler(chain_query, seed=13, parallelism=3)
        assert first.sample_block(30).values(chain_query) == [
            d.value for d in second.sample_batch(30)
        ]


class TestWanderWalkBlock:
    def test_walk_block_matches_walk_batch(self, chain_query):
        batch_walker = WanderJoin(chain_query, seed=21)
        results = batch_walker.walk_batch(400)
        block_walker = WanderJoin(chain_query, seed=21)
        block = block_walker.walk_block(400)
        successes = [r for r in results if r.success]
        assert len(block) == len(successes)
        assert block.attempts == 400
        assert block.values(chain_query) == [r.value for r in successes]
        assert np.allclose(
            block.weights, [1.0 / r.probability for r in successes]
        )
        assert block_walker.walk_count == batch_walker.walk_count
        assert block_walker.success_count == batch_walker.success_count

    def test_walk_block_empty_root(self):
        query = make_chain_query("empty", r_rows=[], s_rows=[(10, 100)])
        block = WanderJoin(query, seed=1).walk_block(25)
        assert len(block) == 0 and block.attempts == 25
        assert block.weights is not None and len(block.weights) == 0


class TestParallelBlockShipping:
    def test_sampling_shards_ship_blocks(self, chain_query):
        pool = ParallelSamplerPool(workers=2, execution="thread")
        tasks = pool.plan_tasks(chain_query, 24, seed=5, method="exact-weight", shards=4)
        results = sequential_reference(tasks)
        assert all(r.block is not None for r in results if r.attempts)
        report = pool.sample(chain_query, 24, seed=5, method="exact-weight", shards=4)
        assert len(report.values) == 24
        merged = []
        for result in results:
            merged.extend(result.block.values(chain_query))
        assert report.values == merged

    def test_process_shard_results_cross_the_boundary(self, chain_query):
        """Blocks (and their projections) survive spawn-pickling round trips."""
        pool = ParallelSamplerPool(workers=2, execution="process", job_timeout=120)
        report = pool.sample(chain_query, 16, seed=5, method="exact-weight", shards=4)
        reference = ParallelSamplerPool(workers=1, execution="thread").sample(
            chain_query, 16, seed=5, method="exact-weight", shards=4
        )
        assert report.values == reference.values
        assert report.sources == reference.sources


class TestColumnarWhere:
    def test_columnar_where_protocol_matches_row_fallback(self, chain_query):
        sampler = JoinSampler(chain_query, seed=11)
        block = sampler.sample_block(200)

        class Predicate:
            def __call__(self, row):
                return row["c"] >= 200

            def columnar(self, columns):
                return np.asarray(columns["c"]) >= 200

        row_only = AggregateAccumulator(
            AggregateSpec("count", where=lambda row: row["c"] >= 200),
            chain_query.output_schema,
        )
        row_only.ingest_block(
            block.value_columns(chain_query), attempts=block.attempts, weight=block.weight
        )
        vectorized = AggregateAccumulator(
            AggregateSpec("count", where=Predicate()), chain_query.output_schema
        )
        vectorized.ingest_block(
            block.value_columns(chain_query), attempts=block.attempts, weight=block.weight
        )
        row_report = row_only.estimate()
        vec_report = vectorized.estimate()
        assert row_report.overall.estimate == vec_report.overall.estimate
        assert row_report.overall.ci_low == vec_report.overall.ci_low

    def test_ingest_block_validates_inputs(self, chain_query):
        accumulator = AggregateAccumulator(
            AggregateSpec("count"), chain_query.output_schema
        )
        with pytest.raises(ValueError, match="columns"):
            accumulator.ingest_block([np.ones(3)], attempts=3, weight=1.0)
        cols = [np.ones(3) for _ in chain_query.output_schema]
        with pytest.raises(ValueError, match="attempts"):
            accumulator.ingest_block(cols, attempts=2, weight=1.0)
        with pytest.raises(ValueError, match="exactly one"):
            accumulator.ingest_block(cols, attempts=3)
        with pytest.raises(ValueError, match="align"):
            accumulator.ingest_block(cols, attempts=3, weights=[1.0])


class TestEpochPlanPatching:
    """refresh() re-syncs level plans per edge, not wholesale."""

    def test_descendant_delta_patches_segments_instead_of_rebuilding(self, chain_query):
        sampler = JoinSampler(chain_query, weights="ew", seed=3)
        sampler.sample_block(50)
        plans_before = sampler._plans
        assert plans_before is not None
        top = plans_before[0]  # R -> S edge: endpoints untouched below
        assert top.parent.relation == "R" and top.node.relation == "S"
        built_before = top.alias._built.copy()
        assert built_before.all()  # the draw above built every touched table

        # Mutate the leaf T only: the R->S edge keeps its CSR/keys/alias by
        # reference; S's weights summarize T, so the dirtied segments must be
        # invalidated for lazy rebuild while untouched segments stay built.
        chain_query.relation("T").extend([(100, 77), (100, 78)])
        assert sampler.refresh()
        plans_after = sampler._plans
        assert plans_after is not None
        assert plans_after[0] is top  # edge object survived the epoch
        assert plans_after[0].csr is top.csr
        # The S rows joining the new T rows gained weight: their key segments
        # went unbuilt (lazy rebuild), while untouched segments stayed built.
        assert not top.alias._built.all()
        # The S->T edge's own child mutated: that plan was rebuilt fresh.
        assert plans_after[1] is not plans_before[1]

        # Correctness after the patch: the sample support matches the join.
        population = join_result_set(chain_query)
        assert set(sampler.sample_block(400).values(chain_query)) == population

    def test_unbuilt_plans_stay_unbuilt_on_refresh(self, chain_query):
        sampler = JoinSampler(chain_query, weights="ew", seed=3)
        assert sampler._plans is None
        chain_query.relation("T").append((100, 79))
        sampler.refresh()
        assert sampler._plans is None


# ---------------------------------------------------------------- dtype audit
class TestDtypeAudit:
    def test_csr_arrays_shrink_to_small_dtypes(self):
        rel = Relation("R", ["k"], [(i % 50,) for i in range(1000)])
        csr = rel.sorted_index_on_columns(["k"])
        assert csr.row_positions.dtype == np.int16
        assert csr.offsets.dtype == np.int16
        assert csr.nbytes == csr.row_positions.nbytes + csr.offsets.nbytes

    def test_csr_delta_maintenance_keeps_small_dtype_and_correctness(self):
        rel = Relation("R", ["k"], [(i % 10,) for i in range(200)])
        csr = rel.sorted_index_on_columns(["k"])
        rel.extend([(3,), (99,)])
        rel.delete_rows([0, 5])
        csr = rel.sorted_index_on_columns(["k"])
        assert csr.row_positions.dtype == np.int16
        for key in list(range(10)) + [99]:
            expected = [p for p, row in enumerate(rel.rows) if row[0] == key]
            assert sorted(csr.positions(key).tolist()) == expected

    def test_integer_columns_shrink(self):
        rel = Relation("R", ["small", "big"], [(i, i * 10**7) for i in range(300)])
        assert rel.column_array("small").dtype == np.int16
        assert rel.column_array("big").dtype == np.int64
        sizes = rel.cache_nbytes()
        assert sizes["columns"] == 300 * 2 + 300 * 8

    def test_shrunk_columns_widen_on_concat(self):
        rel = Relation("R", ["a"], [(1,), (2,)])
        assert rel.column_array("a").dtype == np.int16
        rel.extend([(2**40,)])
        assert rel.column_array("a").tolist() == [1, 2, 2**40]

    def test_shrunk_join_keys_still_sample_correctly(self):
        query = make_chain_query(
            "shrunk",
            r_rows=[(i, i % 7) for i in range(500)],
            s_rows=[(k, 100 + k) for k in range(7)],
        )
        sampler = JoinSampler(query, weights="ew", seed=3)
        population = join_result_set(query)
        assert set(sampler.sample_block(400).values(query)) <= population
        assert sampler.stats.acceptance_rate == pytest.approx(1.0)
