"""Tests for repro.relational.schema."""

import pytest

from repro.relational.schema import ATTRIBUTE_TYPES, Attribute, Schema


class TestAttribute:
    def test_default_dtype_is_int(self):
        assert Attribute("x").dtype == "int"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            Attribute("x", "decimal")

    def test_all_declared_types_are_accepted(self):
        for dtype in ATTRIBUTE_TYPES:
            assert Attribute("x", dtype).dtype == dtype

    def test_attributes_are_hashable_and_comparable(self):
        assert Attribute("x", "int") == Attribute("x", "int")
        assert Attribute("x", "int") != Attribute("x", "str")
        assert len({Attribute("x"), Attribute("x")}) == 1


class TestSchema:
    def test_accepts_strings_and_attributes(self):
        schema = Schema(["a", Attribute("b", "str")])
        assert schema.names == ("a", "b")
        assert schema.attribute("b").dtype == "str"

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(["a", "b", "a"])

    def test_rejects_non_attribute_values(self):
        with pytest.raises(TypeError):
            Schema([1, 2])

    def test_position_lookup(self):
        schema = Schema(["a", "b", "c"])
        assert schema.position("b") == 1
        assert schema.positions(["c", "a"]) == (2, 0)

    def test_position_lookup_missing_raises_keyerror(self):
        schema = Schema(["a"])
        with pytest.raises(KeyError, match="'z'"):
            schema.position("z")

    def test_contains_len_iter(self):
        schema = Schema(["a", "b"])
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2
        assert [a.name for a in schema] == ["a", "b"]

    def test_project_preserves_order_of_request(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_rename(self):
        schema = Schema([Attribute("a", "int"), Attribute("b", "float")])
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x", "b")
        assert renamed.attribute("x").dtype == "int"

    def test_concat_and_clash_detection(self):
        left = Schema(["a", "b"])
        right = Schema(["c"])
        assert left.concat(right).names == ("a", "b", "c")
        with pytest.raises(ValueError):
            left.concat(Schema(["b"]))

    def test_aligns_with_requires_same_names_and_order(self):
        assert Schema(["a", "b"]).aligns_with(Schema(["a", "b"]))
        assert not Schema(["a", "b"]).aligns_with(Schema(["b", "a"]))
        assert not Schema(["a", "b"]).aligns_with(Schema(["a"]))

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["a", "c"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))
