"""Tests for the approximate-aggregation (AQP) layer.

The centerpiece is the **CI-coverage harness**: nominal 95% confidence
intervals must achieve at least 90% empirical coverage over many fixed-seed
trials, with ground truth computed by the exact executor
(``repro.joins.executor``).  Coverage is verified on all three workload
families — acyclic, cyclic, and union-of-joins — plus the bootstrap interval
variant, the stopping rule, epoch restarts, GROUP-BY, and the merge law.
"""

from __future__ import annotations

import pytest

from repro.aqp import (
    AggregateAccumulator,
    AggregateSpec,
    OnlineAggregator,
    exact_aggregate,
)
from repro.core.union_sampler import SetUnionSampler
from repro.estimation.exact import FullJoinUnionEstimator
from repro.joins.executor import execute_join, join_result_set

from tests.stat_helpers import assert_ci_coverage

CONFIDENCE = 0.95
MIN_COVERAGE = 0.90
TRIALS = 120


def union_values(queries):
    values = set()
    for query in queries:
        values |= join_result_set(query)
    return values


def union_truth(queries, spec):
    return exact_aggregate(
        sorted(union_values(queries)), spec, queries[0].output_schema
    )


# ------------------------------------------------------------------- coverage
class TestCoverageAcyclic:
    """Acyclic workloads: chain and star joins (bag semantics)."""

    def test_sum_exact_weight_coverage(self, chain_query):
        spec = AggregateSpec("sum", attribute="d")
        truth = exact_aggregate(execute_join(chain_query), spec, chain_query.output_schema)

        def trial(seed):
            agg = OnlineAggregator(
                chain_query, spec, method="exact-weight", seed=seed, batch_size=256
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)

    def test_sum_olken_coverage(self, chain_query):
        """EO accept/reject: the attempt stream really contains rejections."""
        spec = AggregateSpec("sum", attribute="d")
        truth = exact_aggregate(execute_join(chain_query), spec, chain_query.output_schema)

        def trial(seed):
            agg = OnlineAggregator(
                chain_query, spec, method="olken", seed=seed, batch_size=512
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)

    def test_avg_wander_join_coverage(self, acyclic_query):
        """Non-uniform wander-join samples through the Hájek ratio estimator."""
        spec = AggregateSpec("avg", attribute="k")
        truth = exact_aggregate(
            execute_join(acyclic_query), spec, acyclic_query.output_schema
        )

        def trial(seed):
            agg = OnlineAggregator(
                acyclic_query, spec, method="wander-join", seed=seed, batch_size=512
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)

    def test_count_exact_weight_is_exact(self, acyclic_query):
        """EW COUNT over an acyclic join accepts every attempt: zero variance,
        and the point estimate equals the exact bag size."""
        spec = AggregateSpec("count")
        truth = exact_aggregate(
            execute_join(acyclic_query), spec, acyclic_query.output_schema
        )
        agg = OnlineAggregator(acyclic_query, spec, method="exact-weight", seed=1)
        estimate = agg.step(128).overall
        assert estimate.estimate == truth[()]
        assert estimate.half_width == 0.0


class TestCoverageCyclic:
    """Cyclic workloads: the residual-condition accept/reject path."""

    def test_count_coverage(self, cyclic_query):
        spec = AggregateSpec("count")
        truth = exact_aggregate(execute_join(cyclic_query), spec, cyclic_query.output_schema)

        def trial(seed):
            agg = OnlineAggregator(
                cyclic_query, spec, method="exact-weight", seed=seed, batch_size=512
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)

    def test_sum_olken_coverage(self, cyclic_query):
        spec = AggregateSpec("sum", attribute="c")
        truth = exact_aggregate(execute_join(cyclic_query), spec, cyclic_query.output_schema)

        def trial(seed):
            agg = OnlineAggregator(
                cyclic_query, spec, method="olken", seed=seed, batch_size=512
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)


class TestCoverageUnion:
    """Union workloads: set semantics over J_1 ∪ ... ∪ J_n."""

    def test_sum_strict_union_coverage(self, union_triple):
        spec = AggregateSpec("sum", attribute="c")
        truth = union_truth(union_triple, spec)
        parameters = FullJoinUnionEstimator(union_triple).estimate()

        def trial(seed):
            sampler = SetUnionSampler(union_triple, parameters, seed=seed, mode="strict")
            agg = OnlineAggregator(
                union_triple,
                spec,
                method="online-union",
                seed=seed,
                union_sampler=sampler,
                batch_size=256,
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)

    def test_count_strict_union_coverage(self, union_pair):
        spec = AggregateSpec(
            "count", where=lambda row: row["a"] == 1
        )
        truth = union_truth(union_pair, spec)
        parameters = FullJoinUnionEstimator(union_pair).estimate()

        def trial(seed):
            sampler = SetUnionSampler(union_pair, parameters, seed=seed, mode="strict")
            agg = OnlineAggregator(
                union_pair,
                spec,
                method="online-union",
                seed=seed,
                union_sampler=sampler,
                batch_size=256,
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=TRIALS, min_coverage=MIN_COVERAGE)

    def test_degenerate_union_count_is_refused_on_estimated_parameters(self, union_pair):
        """Unfiltered COUNT(*) over a union would echo the estimated |U| with
        a zero-width interval; only exact parameters make that honest."""
        with pytest.raises(ValueError, match="zero-width"):
            OnlineAggregator(union_pair, AggregateSpec("count"), seed=1)

    def test_degenerate_union_count_allowed_with_exact_parameters(self, union_pair):
        parameters = FullJoinUnionEstimator(union_pair).estimate()
        sampler = SetUnionSampler(union_pair, parameters, seed=1, mode="strict")
        agg = OnlineAggregator(
            union_pair, AggregateSpec("count"), seed=1, union_sampler=sampler
        )
        estimate = agg.step(64).overall
        assert estimate.estimate == float(len(union_values(union_pair)))
        assert estimate.half_width == 0.0


class TestCoverageBootstrap:
    def test_bootstrap_sum_coverage(self, chain_query):
        spec = AggregateSpec("sum", attribute="d")
        truth = exact_aggregate(execute_join(chain_query), spec, chain_query.output_schema)

        def trial(seed):
            agg = OnlineAggregator(
                chain_query,
                spec,
                method="olken",
                seed=seed,
                batch_size=512,
                ci_method="bootstrap",
                bootstrap_replicates=300,
            )
            return agg.step().overall

        assert_ci_coverage(trial, truth[()], trials=60, min_coverage=MIN_COVERAGE)


# --------------------------------------------------------------- online loop
class TestStoppingRule:
    def test_until_reaches_target(self, chain_query):
        spec = AggregateSpec("sum", attribute="d")
        agg = OnlineAggregator(chain_query, spec, method="olken", seed=11, batch_size=256)
        report = agg.until(rel_error=0.02, confidence=CONFIDENCE)
        estimate = report.overall
        assert estimate.relative_half_width <= 0.02
        truth = exact_aggregate(
            execute_join(chain_query), spec, chain_query.output_schema
        )[()]
        # At 2% relative error the estimate must be in the right ballpark.
        assert abs(estimate.estimate - truth) <= 0.1 * truth

    def test_until_raises_on_budget(self, chain_query):
        spec = AggregateSpec("sum", attribute="d")
        agg = OnlineAggregator(chain_query, spec, method="olken", seed=11, batch_size=64)
        with pytest.raises(RuntimeError, match="did not reach"):
            agg.until(rel_error=1e-6, max_attempts=256)

    def test_until_rejects_bad_rel_error(self, chain_query):
        agg = OnlineAggregator(chain_query, AggregateSpec("count"), seed=1)
        with pytest.raises(ValueError):
            agg.until(rel_error=0.0)


class TestEpochRestart:
    def test_mutation_restarts_accumulator(self):
        from tests.conftest import make_chain_query

        query = make_chain_query(
            "J", r_rows=[(1, 10), (2, 20)], s_rows=[(10, 100), (20, 300)]
        )
        spec = AggregateSpec("count")
        agg = OnlineAggregator(query, spec, method="exact-weight", seed=7, batch_size=128)
        first = agg.step().overall
        assert first.estimate == 2.0  # exact on acyclic EW
        assert agg.epochs_restarted == 0

        query.relation("R").extend([(9, 10), (8, 20)])
        report = agg.step()
        assert agg.epochs_restarted == 1
        # The accumulator restarted: the estimate reflects only the new epoch.
        truth = len(execute_join(query))
        assert report.overall.estimate == float(truth)

    def test_noop_epoch_does_not_restart(self, chain_query):
        spec = AggregateSpec("count")
        agg = OnlineAggregator(chain_query, spec, method="exact-weight", seed=7)
        agg.step(64)
        attempts = agg.accumulator.attempts
        agg.step(64)
        assert agg.epochs_restarted == 0
        assert agg.accumulator.attempts > attempts


# ------------------------------------------------------------------ group-by
class TestGroupBy:
    def test_grouped_sum_matches_truth(self, chain_query):
        spec = AggregateSpec("sum", attribute="d", group_by="a")
        truth = exact_aggregate(execute_join(chain_query), spec, chain_query.output_schema)
        agg = OnlineAggregator(chain_query, spec, method="exact-weight", seed=13)
        report = agg.until(rel_error=0.05)
        assert set(report.groups()) == set(truth)
        # Per-group 95% intervals each miss ~5% of the time, so a hard
        # covers() assertion over several groups would flake by construction;
        # three half-widths (~99.95% per group) is the deterministic check.
        for group, estimate in report.estimates.items():
            assert abs(estimate.estimate - truth[group]) <= 3 * estimate.half_width, (
                group,
                estimate,
                truth[group],
            )

    def test_grouped_report_serializes(self, chain_query):
        spec = AggregateSpec("count", group_by="a")
        agg = OnlineAggregator(chain_query, spec, method="exact-weight", seed=13)
        payload = agg.step(256).to_dict()
        assert payload["aggregate"] == "COUNT(*) BY a"
        assert len(payload["groups"]) == 3
        assert all(g["attempts"] > 0 for g in payload["groups"])


# ---------------------------------------------------------------- accumulator
class TestAccumulator:
    def test_chunked_merge_is_exact(self, chain_query):
        spec = AggregateSpec("sum", attribute="d")
        schema = chain_query.output_schema
        values = [v for v in execute_join(chain_query)] * 7
        whole = AggregateAccumulator(spec, schema)
        whole.observe(values, attempts=len(values) + 10, weight=6.0)

        left = AggregateAccumulator(spec, schema)
        right = AggregateAccumulator(spec, schema)
        left.observe(values[:5], attempts=9, weight=6.0)
        right.observe(values[5:], attempts=len(values) - 5 + 6, weight=6.0)
        merged = right.merge(left)  # reversed merge order on purpose

        a, b = whole.estimate().overall, merged.estimate().overall
        assert a.estimate == b.estimate
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_observe_validates_accounting(self, chain_query):
        acc = AggregateAccumulator(AggregateSpec("count"), chain_query.output_schema)
        with pytest.raises(ValueError, match="attempts"):
            acc.observe([(1, 100, 7)], attempts=0, weight=2.0)
        with pytest.raises(ValueError, match="exactly one"):
            acc.observe([(1, 100, 7)], attempts=1)
        with pytest.raises(ValueError, match="align"):
            acc.observe([(1, 100, 7)], attempts=1, weights=[1.0, 2.0])

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="attribute"):
            AggregateSpec("sum")
        with pytest.raises(ValueError, match="kind"):
            AggregateSpec("median", attribute="d")
        with pytest.raises(ValueError, match="not in output schema"):
            AggregateAccumulator(AggregateSpec("sum", attribute="nope"), ("a", "b"))

    def test_exact_aggregate_reference(self):
        spec = AggregateSpec("avg", attribute="x", group_by="k")
        values = [(1, 2.0), (1, 4.0), (2, 10.0)]
        out = exact_aggregate(values, spec, ("k", "x"))
        assert out == {(1,): 3.0, (2,): 10.0}
