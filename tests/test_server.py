"""Tests for the sampling server (repro.server).

The load-bearing invariant: a response is a pure function of
``(request, database snapshot)`` — N concurrent clients get bit-identical
answers to the same requests served sequentially, admission control rejects
with structured errors instead of degrading everyone, and a mutation landing
mid-request restarts the request against the new snapshot instead of
blending epochs.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.aqp import AggregateSpec, OnlineAggregator
from repro.cache import SampleCache
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery
from repro.relational.relation import Relation
from repro.sampling.join_sampler import JoinSampler
from repro.server import (
    AdmissionLimits,
    SamplingService,
    ServerClient,
    ServerError,
    start_server,
)
from repro.server.protocol import ERROR_CODES


def make_service(**overrides) -> SamplingService:
    options = dict(workload_name="UQ1", scale_factor=0.0005, seed=3)
    options.update(overrides)
    return SamplingService(**options)


@pytest.fixture(scope="module")
def service():
    """One warm, read-only service shared by the tests that never mutate."""
    svc = make_service()
    yield svc
    svc.close()


def make_chain(name="chain") -> JoinQuery:
    rows_r = [(i, i % 4) for i in range(24)]
    rows_s = [(b, 10 * b + j) for b in range(4) for j in range(3)]
    return JoinQuery(
        name,
        [Relation("R", ["a", "b"], rows_r), Relation("S", ["b", "c"], rows_s)],
        [JoinCondition("R", "b", "S", "b")],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
    )


def run_concurrently(worker, count):
    """Run ``worker(i)`` on ``count`` threads; re-raise the first failure."""
    results = [None] * count
    errors = []
    barrier = threading.Barrier(count)

    def target(i):
        try:
            barrier.wait(timeout=30)
            results[i] = worker(i)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    if errors:
        raise errors[0]
    return results


class TestBitIdenticalConcurrency:
    """N simultaneous clients == the same requests served sequentially."""

    def sample_requests(self, service):
        names = service.workload.query_names
        return [
            {"kind": "sample", "query": names[i % len(names)],
             "count": 24 + i, "seed": 100 + i}
            for i in range(8)
        ]

    def test_concurrent_samples_bit_identical_to_sequential(self, service):
        requests = self.sample_requests(service)
        sequential = [service.handle(r) for r in requests]
        concurrent = run_concurrently(
            lambda i: service.handle(requests[i]), len(requests)
        )
        assert concurrent == sequential
        assert all(r["ok"] for r in sequential)
        assert all(r["result"]["warm"] for r in sequential)

    def test_concurrent_aggregates_bit_identical_to_sequential(self, service):
        name = service.workload.query_names[0]
        requests = [
            {"kind": "aggregate", "query": name, "aggregate": "sum",
             "attribute": "totalprice", "rel_error": 0.25,
             "method": "exact-weight", "seed": 40 + i}
            for i in range(4)
        ]
        sequential = [service.handle(r) for r in requests]
        concurrent = run_concurrently(
            lambda i: service.handle(requests[i]), len(requests)
        )
        assert concurrent == sequential
        for response in sequential:
            assert response["ok"]
            assert response["result"]["warm"]
            assert response["result"]["report"]["accepted"] > 0

    def test_mixed_kinds_concurrently(self, service):
        name = service.workload.query_names[1]
        requests = [
            {"kind": "sample", "query": name, "count": 16, "seed": 9},
            {"kind": "aggregate", "query": name, "aggregate": "count",
             "rel_error": 0.3, "method": "olken", "seed": 9},
            {"kind": "health"},
            {"kind": "sample", "query": "union", "count": 12, "seed": 9},
        ]
        sequential = [service.handle(r) for r in requests]
        concurrent = run_concurrently(
            lambda i: service.handle(requests[i]), len(requests)
        )
        # health/stats counters differ run to run; compare the deterministic ones
        assert concurrent[0] == sequential[0]
        assert concurrent[1] == sequential[1]
        assert concurrent[3] == sequential[3]
        assert concurrent[2]["ok"] and sequential[2]["ok"]

    def test_union_sample_routes_through_pool(self, service):
        response = service.handle(
            {"kind": "sample", "query": "union", "count": 20, "seed": 5}
        )
        assert response["ok"]
        result = response["result"]
        assert not result["warm"]
        assert result["backend"] == "online-union"
        assert len(result["values"]) == 20
        assert set(result["sources"]) <= set(service.workload.query_names)


class TestAdmissionControl:
    def test_over_budget_sample_count_rejected(self):
        with make_service(limits=AdmissionLimits(max_samples=100),
                          warm_on_start=False) as svc:
            response = svc.handle(
                {"kind": "sample", "query": svc.workload.query_names[0],
                 "count": 101, "seed": 1}
            )
            assert not response["ok"]
            error = response["error"]
            assert error["code"] == "admission-rejected"
            assert error["limit"] == "max_samples"
            assert error["max_samples"] == 100
            assert error["requested_samples"] == 101

    def test_overpriced_request_rejected(self):
        with make_service(limits=AdmissionLimits(max_request_seconds=1e-12),
                          warm_on_start=False) as svc:
            response = svc.handle(
                {"kind": "aggregate", "query": svc.workload.query_names[0],
                 "aggregate": "count", "rel_error": 0.01, "seed": 1}
            )
            assert not response["ok"]
            assert response["error"]["code"] == "admission-rejected"
            assert response["error"]["limit"] == "max_request_seconds"
            assert response["error"]["priced_seconds"] > 0

    def test_inflight_cap_rejects_instead_of_queueing(self):
        with make_service(limits=AdmissionLimits(max_inflight=1),
                          sample_chunk=4) as svc:
            name = svc.workload.query_names[0]
            entered = threading.Event()
            release = threading.Event()

            def hold(service, query):
                entered.set()
                assert release.wait(timeout=30)
                service._after_chunk = None  # hold only the first chunk

            svc._after_chunk = hold
            slow = {}
            thread = threading.Thread(
                target=lambda: slow.setdefault(
                    "response",
                    svc.handle({"kind": "sample", "query": name,
                                "count": 16, "seed": 2}),
                )
            )
            thread.start()
            assert entered.wait(timeout=30)
            rejected = svc.handle(
                {"kind": "sample", "query": name, "count": 8, "seed": 3}
            )
            release.set()
            thread.join(timeout=60)
            assert not rejected["ok"]
            assert rejected["error"]["code"] == "admission-rejected"
            assert rejected["error"]["limit"] == "max_inflight"
            assert slow["response"]["ok"]

    def test_admission_bookkeeping(self):
        with make_service(limits=AdmissionLimits(max_samples=50),
                          warm_on_start=False) as svc:
            name = svc.workload.query_names[0]
            svc.handle({"kind": "sample", "query": name, "count": 10, "seed": 1})
            svc.handle({"kind": "sample", "query": name, "count": 51, "seed": 1})
            stats = svc.handle({"kind": "stats"})["result"]
            assert stats["admission"]["admitted"] >= 1
            assert stats["admission"]["rejected"] >= 1
            assert stats["admission"]["inflight"] == 0


class TestEpochConsistency:
    def test_mid_flight_mutation_discards_and_restarts(self):
        svc = make_service(sample_chunk=8)
        try:
            name = svc.workload.query_names[0]
            fired = []

            def mutate_once(service, query):
                if not fired:
                    fired.append(True)
                    service.handle({"kind": "mutate", "relation": "lineitem",
                                    "delete_positions": [0, 1]})

            svc._after_chunk = mutate_once
            request = {"kind": "sample", "query": name, "count": 32, "seed": 6}
            response = svc.handle(request)
            svc._after_chunk = None
            assert response["ok"], response
            assert fired, "the mutation hook never fired"
            assert response["result"]["epoch_restarts"] >= 1
            # Epoch consistency: the answer equals a clean draw against the
            # *post-mutation* snapshot — the pre-mutation chunks were discarded.
            clean = svc.handle(request)
            assert clean["result"]["values"] == response["result"]["values"]
            assert clean["result"]["epoch_restarts"] == 0
        finally:
            svc.close()

    def test_endless_mutation_exhausts_restarts(self):
        svc = make_service(sample_chunk=8, max_epoch_restarts=2)
        try:
            name = svc.workload.query_names[0]

            def always_mutate(service, query):
                service.handle({"kind": "mutate", "relation": "lineitem",
                                "delete_positions": [0]})

            svc._after_chunk = always_mutate
            response = svc.handle(
                {"kind": "sample", "query": name, "count": 32, "seed": 6}
            )
            assert not response["ok"]
            assert response["error"]["code"] == "epoch-restart-exhausted"
        finally:
            svc.close()

    def test_mutate_bumps_versions_and_requests_still_served(self):
        svc = make_service(warm_on_start=False)
        try:
            name = svc.workload.query_names[0]
            before = svc.handle({"kind": "sample", "query": name,
                                 "count": 16, "seed": 8})
            mutated = svc.handle({"kind": "mutate", "relation": "orders",
                                  "delete_positions": [0, 1, 2]})
            assert mutated["ok"]
            assert mutated["result"]["rows_deleted"] > 0
            after = svc.handle({"kind": "sample", "query": name,
                                "count": 16, "seed": 8})
            assert before["ok"] and after["ok"]
            # same seed, new snapshot: the answer is allowed to change, but
            # must again be deterministic on repeat
            again = svc.handle({"kind": "sample", "query": name,
                                "count": 16, "seed": 8})
            assert after == again
        finally:
            svc.close()


class TestDeadlines:
    def test_deadline_without_partial_fails_with_deadline_code(self, service):
        response = service.handle(
            {"kind": "sample", "query": service.workload.query_names[0],
             "count": 64, "seed": 4, "deadline": 0.0}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "deadline-exceeded"

    def test_empty_partial_refused(self, service):
        response = service.handle(
            {"kind": "sample", "query": service.workload.query_names[0],
             "count": 64, "seed": 4, "deadline": 0.0, "allow_partial": True}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "empty-result"

    def test_partial_with_data_is_degraded_not_error(self):
        svc = make_service(sample_chunk=4)
        try:
            name = svc.workload.query_names[0]
            deadline = 0.05

            def outlast_deadline(service, query):
                service._after_chunk = None
                time.sleep(deadline * 2)

            svc._after_chunk = outlast_deadline
            response = svc.handle(
                {"kind": "sample", "query": name, "count": 64, "seed": 4,
                 "deadline": deadline, "allow_partial": True}
            )
            assert response["ok"], response
            result = response["result"]
            assert result["degraded"]
            assert 0 < len(result["values"]) < 64
        finally:
            svc.close()

    def test_aggregate_deadline_mapping(self, service):
        base = {"kind": "aggregate", "query": service.workload.query_names[0],
                "aggregate": "count", "rel_error": 0.01, "seed": 4,
                "deadline": 0.0}
        hard = service.handle(base)
        assert not hard["ok"]
        assert hard["error"]["code"] == "deadline-exceeded"
        partial = service.handle({**base, "allow_partial": True})
        assert not partial["ok"]
        assert partial["error"]["code"] == "empty-result"


class TestProtocolErrors:
    def test_unknown_query(self, service):
        response = service.handle({"kind": "sample", "query": "nope", "count": 4})
        assert not response["ok"]
        assert response["error"]["code"] == "unknown-query"
        assert response["error"]["queries"] == service.workload.query_names

    @pytest.mark.parametrize("request_dict", [
        {"kind": "sample", "query": "UQ1_J1"},                      # no count
        {"kind": "sample", "query": "UQ1_J1", "count": 0},          # count < 1
        {"kind": "sample", "query": "UQ1_J1", "count": "ten"},      # not an int
        {"kind": "aggregate", "query": "UQ1_J1", "aggregate": "sum"},  # no attr
        {"kind": "aggregate", "query": "UQ1_J1", "aggregate": "max"},  # bad agg
        {"kind": "aggregate", "query": "union", "aggregate": "count",
         "method": "olken"},                                         # union+olken
        {"kind": "mutate", "relation": "orders"},                    # no positions
        {"kind": "mutate", "relation": "orders", "delete_positions": [-1]},
        {"kind": "nonsense"},
        "not a mapping",
    ])
    def test_invalid_requests(self, service, request_dict):
        response = service.handle(request_dict)
        assert not response["ok"]
        assert response["error"]["code"] == "invalid-request"

    def test_every_error_code_has_a_status(self):
        for code, status in ERROR_CODES.items():
            assert 400 <= status <= 599, (code, status)


class TestHTTPTransport:
    @pytest.fixture(scope="class")
    def server(self):
        svc = make_service()
        server, thread = start_server(svc, port=0)
        yield server
        server.shutdown()
        svc.close()

    def test_roundtrip_matches_in_process(self, server):
        client = ServerClient(port=server.port)
        request = {"kind": "sample", "query": "UQ1_J2", "count": 18, "seed": 12}
        over_http = client.call(request)
        in_process = server.service.handle(request)["result"]
        assert over_http == in_process

    def test_health_and_stats_get_endpoints(self, server):
        client = ServerClient(port=server.port)
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["counters"]["requests"] >= 1

    def test_structured_error_over_http(self, server):
        client = ServerClient(port=server.port)
        with pytest.raises(ServerError) as excinfo:
            client.sample("nope", 4)
        assert excinfo.value.code == "unknown-query"
        assert excinfo.value.details["queries"]

    def test_concurrent_http_clients_bit_identical(self, server):
        client = ServerClient(port=server.port)
        requests = [
            {"kind": "sample", "query": "UQ1_J3", "count": 10 + i, "seed": 70 + i}
            for i in range(6)
        ]
        sequential = [client.call(r) for r in requests]
        concurrent = run_concurrently(
            lambda i: ServerClient(port=server.port).call(requests[i]),
            len(requests),
        )
        assert concurrent == sequential

    def test_bad_paths_and_bodies(self, server):
        import http.client
        import json as jsonlib

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/api", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = jsonlib.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "invalid-request"
        finally:
            conn.close()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
        finally:
            conn.close()


class TestSharedSamplerConcurrency:
    """Regression: concurrent callers on one sampler/aggregator (satellite 2)."""

    def test_concurrent_sample_batches_on_one_sampler(self):
        sampler = JoinSampler(make_chain(), seed=11)
        per_thread = 120
        batches = run_concurrently(
            lambda i: sampler.sample_batch(per_thread), 4
        )
        assert all(len(batch) == per_thread for batch in batches)
        valid = {(a, 10 * (a % 4) + j) for a in range(24) for j in range(3)}
        for batch in batches:
            for draw in batch:
                assert tuple(draw.value) in valid
        assert sampler.stats.accepted >= 4 * per_thread

    def test_two_interleaved_until_runs(self):
        aggregator = OnlineAggregator(
            make_chain(), AggregateSpec("sum", attribute="c"),
            method="exact-weight", seed=21,
        )
        reports = run_concurrently(
            lambda i: aggregator.until(0.05, max_attempts=100_000), 2
        )
        for report in reports:
            assert report.accepted > 0
            assert report.overall.estimate > 0
            assert report.overall.ci_low <= report.overall.estimate <= report.overall.ci_high
        # both runs observed the same shared accumulator: the later report
        # can only be equal or tighter, never inconsistent
        assert {r.spec.describe() for r in reports} == {"SUM(c)"}

    def test_interleaved_steps_keep_accounting_consistent(self):
        aggregator = OnlineAggregator(
            make_chain(), AggregateSpec("count"),
            method="exact-weight", seed=33,
        )
        run_concurrently(lambda i: [aggregator.step(32) for _ in range(5)], 4)
        report = aggregator.estimate()
        # step() also ingests buffered surplus draws, so accepted is "at
        # least the sum of the batches", not exactly — the invariants are
        # that no draw is lost or double-counted and the estimate is exact
        # (COUNT under exact weights: every sample contributes |J| exactly).
        assert report.accepted >= 4 * 5 * 32
        assert report.attempts >= report.accepted
        assert report.overall.estimate == pytest.approx(72.0)


class TestServiceLifecycle:
    def test_context_manager_closes_pool(self):
        with make_service(warm_on_start=False) as svc:
            assert not svc.pool.closed
        assert svc.pool.closed

    def test_closed_service_refuses_requests(self):
        svc = make_service(warm_on_start=False)
        svc.close()
        response = svc.handle({"kind": "health"})
        assert not response["ok"]
        assert response["error"]["code"] == "internal"

    def test_warm_on_start_builds_prototypes(self, service):
        assert service.warm_prototypes >= len(service.workload.queries)


class TestAdmissionLeakRegression:
    """Satellite bugfix: failed requests must drain their reservations.

    The pre-fix controller acquired the inflight slot and priced seconds on
    admission but only gave them back on the success path — every failing
    aggregate leaked one slot until the server wedged at ``max_inflight``.
    The ticket is now released in a ``finally``; these hammers pin that.
    """

    def failing_aggregate(self, svc, seed):
        # max_attempts=1 cannot reach a 1% error target, but its budget
        # passes admission fine: the aggregator raises RuntimeError *after*
        # admission, which is exactly the leak's trigger path.
        return svc.handle({
            "kind": "aggregate", "query": svc.workload.query_names[0],
            "aggregate": "sum", "attribute": "totalprice",
            "rel_error": 0.01, "seed": seed,
            "method": "exact-weight", "max_attempts": 1,
        })

    def admission_stats(self, svc):
        return svc.handle({"kind": "stats"})["result"]["admission"]

    def test_sequential_failure_hammer_drains_reservations(self):
        with make_service(warm_on_start=False,
                          limits=AdmissionLimits(max_inflight=2)) as svc:
            # More failures than inflight slots: with the leak, request 3
            # would already bounce on max_inflight instead of failing with
            # the real error.
            for seed in range(6):
                response = self.failing_aggregate(svc, seed)
                assert not response["ok"]
                assert response["error"]["code"] == "internal"
            stats = self.admission_stats(svc)
            assert stats["inflight"] == 0
            assert stats["inflight_seconds"] == 0.0
            # A well-formed request still gets through afterwards.
            ok = svc.handle({
                "kind": "sample", "query": svc.workload.query_names[0],
                "count": 4, "seed": 1,
            })
            assert ok["ok"]

    def test_concurrent_failure_hammer_drains_reservations(self):
        with make_service(warm_on_start=False) as svc:
            responses = run_concurrently(
                lambda i: self.failing_aggregate(svc, i), 8
            )
            # Every request must resolve to a real error (internal) or an
            # honest admission rejection — and either way, drain fully.
            assert all(not r["ok"] for r in responses)
            assert all(r["error"]["code"] in ("internal", "admission-rejected")
                       for r in responses)
            stats = self.admission_stats(svc)
            assert stats["inflight"] == 0
            assert stats["inflight_seconds"] == 0.0

    def test_failed_sample_releases_slot(self):
        # The sample path shares the ticket discipline: an unknown weights
        # string never admits, but a deadline failure happens post-admission.
        with make_service(warm_on_start=False) as svc:
            response = svc.handle({
                "kind": "sample", "query": svc.workload.query_names[0],
                "count": 10_000, "seed": 1, "deadline": 0.0,
            })
            assert not response["ok"]
            assert response["error"]["code"] in ("deadline-exceeded", "empty-result")
            stats = self.admission_stats(svc)
            assert stats["inflight"] == 0
            assert stats["inflight_seconds"] == 0.0


class TestPrototypeSingleBuild:
    """Satellite bugfix: concurrent warm lookups build each prototype once.

    The pre-fix lazy path checked the dict and then built outside any lock,
    so N requests racing on a cold key paid N O(rows) builds and the last
    writer won.  Builds now run under a per-key lock with a double-checked
    lookup; the ``prototype_builds`` counter pins the "exactly once".
    """

    def test_barrier_of_warm_aggregates_builds_once(self):
        with make_service(warm_on_start=False) as svc:
            name = svc.workload.query_names[0]
            responses = run_concurrently(
                lambda i: svc.handle({
                    "kind": "aggregate", "query": name, "aggregate": "count",
                    "rel_error": 0.2, "seed": 7, "method": "exact-weight",
                }),
                8,
            )
            assert all(r["ok"] for r in responses)
            first = responses[0]
            assert all(r == first for r in responses), \
                "racing builders must not fork the warm state"
            counters = svc.handle({"kind": "stats"})["result"]["counters"]
            assert counters["prototype_builds"] == 1

    def test_distinct_keys_build_independently(self):
        with make_service(warm_on_start=False) as svc:
            names = svc.workload.query_names[:2]
            run_concurrently(
                lambda i: svc.handle({
                    "kind": "aggregate", "query": names[i % 2],
                    "aggregate": "count", "rel_error": 0.2, "seed": 7,
                    "method": "exact-weight",
                }),
                6,
            )
            counters = svc.handle({"kind": "stats"})["result"]["counters"]
            assert counters["prototype_builds"] == 2


class TestServerCacheTier:
    """The cache tier behind the aggregate handler (see docs/cache.md)."""

    AGG = {"kind": "aggregate", "aggregate": "sum", "attribute": "totalprice",
           "method": "exact-weight", "seed": 21}

    def request(self, svc, **overrides):
        request = dict(self.AGG, query=svc.workload.query_names[0])
        request.update(overrides)
        return svc.handle(request)

    def test_followup_is_served_from_cache_and_priced_near_zero(self):
        with make_service(cache=SampleCache()) as svc:
            cold = self.request(svc, rel_error=0.05)
            assert cold["ok"]
            assert cold["result"]["cache"]["cached_samples"] == 0
            assert cold["result"]["cache"]["fresh_samples"] > 0
            # Looser target than the primer: the whole budget is cached, so
            # the request prices at the warm floor — zero.
            warm = self.request(svc, rel_error=0.2, aggregate="avg", seed=22)
            assert warm["ok"]
            assert warm["result"]["cache"]["cached_samples"] > 0
            assert warm["result"]["cache"]["fresh_samples"] == 0
            assert warm["result"]["priced_seconds"] == 0.0
            assert warm["result"]["priced_seconds"] < cold["result"]["priced_seconds"]

    def test_cache_false_is_bit_identical_to_a_cacheless_server(self):
        with make_service(cache=SampleCache()) as caching, make_service() as plain:
            self.request(caching, rel_error=0.1)  # populate the cache
            opted_out = self.request(caching, rel_error=0.1, cache=False)
            reference = self.request(plain, rel_error=0.1)
            assert opted_out == reference
            assert "cache" not in opted_out["result"]

    def test_cache_request_on_cacheless_server_is_rejected(self):
        with make_service(warm_on_start=False) as svc:
            response = self.request(svc, rel_error=0.1, cache=True)
            assert not response["ok"]
            assert response["error"]["code"] == "invalid-request"
            assert "--cache" in response["error"]["message"]

    def test_mutation_invalidates_and_the_followup_redraws(self):
        with make_service(cache=SampleCache()) as svc:
            self.request(svc, rel_error=0.1)
            mutated = svc.handle({
                "kind": "mutate", "relation": "orders",
                "delete_positions": [0],
            })
            assert mutated["ok"]
            counters = svc.handle({"kind": "stats"})["result"]["counters"]
            assert counters["cache_invalidations"] >= 1
            redraw = self.request(svc, rel_error=0.1, seed=23)
            assert redraw["ok"]
            assert redraw["result"]["cache"]["cached_samples"] == 0
            assert redraw["result"]["cache"]["fresh_samples"] > 0

    def test_stats_expose_the_cache_section(self):
        with make_service(cache=SampleCache(), warm_on_start=False) as svc:
            self.request(svc, rel_error=0.1)
            stats = svc.handle({"kind": "stats"})["result"]
            cache_stats = stats["cache"]
            assert cache_stats["enabled"]
            assert cache_stats["entries"] == 1
            assert cache_stats["samples"] > 0
            assert cache_stats["bytes"] > 0
        with make_service(warm_on_start=False) as svc:
            assert svc.handle({"kind": "stats"})["result"]["cache"] == {
                "enabled": False
            }
