"""Batch/scalar equivalence of the vectorized sampling engine.

The batched descent (`JoinSampler.sample_batch`, `WanderJoin.walk_batch`) must
produce samples identically distributed to the scalar reference paths: same
acceptance rates, same uniformity over the join result, same walk success
statistics — on chain, acyclic, cyclic, and composite-key joins.
"""

import numpy as np
import pytest

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.executor import join_result_set
from repro.joins.query import JoinQuery
from repro.relational.columnar import as_column_array, tuple_key_array
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.relation import Relation
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import WanderJoin
from repro.utils.rng import BatchedCategorical, ensure_rng

from tests.stat_helpers import assert_uniform


@pytest.fixture
def composite_query() -> JoinQuery:
    """R ⋈ S on the composite key (k1, k2), with skewed key degrees."""
    r_rows = [
        (1, 10, "x"), (2, 10, "x"), (3, 10, "y"),
        (4, 20, "x"), (5, 20, "y"), (6, 30, "z"),
    ]
    s_rows = [
        (10, "x", 100), (10, "x", 101), (10, "x", 102),
        (10, "y", 200),
        (20, "x", 300), (20, "y", 400), (20, "y", 401),
        (40, "z", 900),
    ]
    return JoinQuery(
        "composite",
        [Relation("R", ["a", "k1", "k2"], r_rows), Relation("S", ["k1", "k2", "c"], s_rows)],
        [JoinCondition("R", "k1", "S", "k1"), JoinCondition("R", "k2", "S", "k2")],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
    )


@pytest.fixture
def string_key_query() -> JoinQuery:
    """Chain join whose join attribute is a string column (typed '<U' arrays)."""
    r = Relation("R", ["a", "b"], [(i, "k%d" % (i % 3)) for i in range(9)])
    s = Relation("S", ["b", "c"], [("k0", 1), ("k0", 2), ("k1", 3), ("k2", 4), ("k2", 5)])
    return JoinQuery(
        "stringkeys",
        [r, s],
        [JoinCondition("R", "b", "S", "b")],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
    )


class TestSortedIndex:
    def test_csr_layout_matches_hash_index(self):
        idx = HashIndex.build([10, 20, 10, 30, 10], "a")
        csr = SortedIndex.from_hash_index(idx)
        assert csr.total_rows == 5
        assert csr.n_keys == 3
        for value in (10, 20, 30, 99):
            assert sorted(csr.positions(value).tolist()) == sorted(idx.positions(value))
            assert csr.degree(value) == idx.degree(value)

    def test_slots_for_numeric_fast_path(self):
        csr = SortedIndex.from_hash_index(HashIndex.build([5, 7, 5, 9], "a"))
        values = np.asarray([5, 9, 6, 7, 11])
        slots = csr.slots_for(values)
        assert slots[2] == -1 and slots[4] == -1
        assert csr.row_positions[csr.offsets[slots[0]]] in (0, 2)

    def test_slots_for_object_fallback(self):
        csr = SortedIndex.from_hash_index(
            HashIndex.build([(1, "a"), (2, "b"), (1, "a")], "k")
        )
        slots = csr.slots_for(tuple_key_array([as_column_array([1, 2, 3]),
                                               as_column_array(["a", "b", "a"])]))
        assert slots[2] == -1
        assert sorted(csr.positions((1, "a")).tolist()) == [0, 2]

    def test_segment_sums(self):
        csr = SortedIndex.from_hash_index(HashIndex.build([1, 2, 1, 2, 2], "a"))
        row_values = np.asarray([1.0, 10.0, 2.0, 20.0, 30.0])
        sums = csr.segment_sums(row_values)
        assert sums[csr.slot(1)] == pytest.approx(3.0)
        assert sums[csr.slot(2)] == pytest.approx(60.0)

    def test_empty_index(self):
        csr = SortedIndex.from_hash_index(HashIndex.build([], "a"))
        assert csr.n_keys == 0 and csr.total_rows == 0
        assert csr.positions(1).size == 0
        assert csr.segment_sums(np.zeros(0)).size == 0


class TestColumnarRelation:
    def test_column_array_matches_rows_and_invalidates(self):
        rel = Relation("R", ["a", "b"], [(1, "x"), (2, "y")])
        assert rel.column_array("a").tolist() == [1, 2]
        rel.append((3, "z"))
        assert rel.column_array("a").tolist() == [1, 2, 3]
        rel.extend([(4, "w")])
        assert rel.column_array("b").tolist() == ["x", "y", "z", "w"]

    def test_join_key_array_composite(self):
        rel = Relation("R", ["a", "b"], [(1, "x"), (2, "y")])
        keys = rel.join_key_array(["a", "b"])
        assert keys.tolist() == [(1, "x"), (2, "y")]

    def test_extend_validates_before_mutating(self):
        rel = Relation("R", ["a", "b"], [(1, 2)])
        with pytest.raises(ValueError):
            rel.extend([(3, 4), (5,)])
        assert len(rel) == 1  # the valid prefix must not be half-applied

    def test_sorted_index_cached_and_maintained(self):
        """Mutations patch the cached CSR in place (and bump the version)
        instead of throwing it away — the incremental maintenance contract."""
        rel = Relation("R", ["a"], [(1,), (1,), (2,)])
        csr = rel.sorted_index_on_columns(["a"])
        assert rel.sorted_index_on_columns(["a"]) is csr
        version = rel.version
        rel.append((2,))
        assert rel.version == version + 1
        maintained = rel.sorted_index_on_columns(["a"])
        assert maintained is csr
        assert sorted(maintained.positions(2).tolist()) == [2, 3]
        rel.delete_rows([0])  # swap-remove: the last row fills position 0
        assert rel.rows == [(2,), (1,), (2,)]
        assert sorted(rel.sorted_index_on_columns(["a"]).positions(1).tolist()) == [1]
        assert sorted(rel.sorted_index_on_columns(["a"]).positions(2).tolist()) == [0, 2]


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_acceptance_rate_matches_scalar(self, chain_query, weights):
        scalar = JoinSampler(chain_query, weights=weights, seed=101)
        accepted = sum(1 for _ in range(3000) if scalar.try_sample() is not None)
        batched = JoinSampler(chain_query, weights=weights, seed=202)
        batched.sample_batch(accepted or 1)
        assert batched.stats.acceptance_rate == pytest.approx(
            scalar.stats.acceptance_rate, abs=0.08
        )

    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_chain_uniformity(self, chain_query, weights):
        sampler = JoinSampler(chain_query, weights=weights, seed=31)
        population = sorted(join_result_set(chain_query))
        draws = sampler.sample_batch(1500)
        assert_uniform([d.value for d in draws], population)

    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_acyclic_uniformity(self, acyclic_query, weights):
        sampler = JoinSampler(acyclic_query, weights=weights, seed=37)
        population = sorted(join_result_set(acyclic_query))
        draws = sampler.sample_batch(1200)
        assert_uniform([d.value for d in draws], population)

    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_cyclic_uniformity(self, cyclic_query, weights):
        sampler = JoinSampler(cyclic_query, weights=weights, seed=41)
        population = sorted(join_result_set(cyclic_query))
        draws = sampler.sample_batch(900)
        assert_uniform([d.value for d in draws], population)
        assert sampler.stats.rejected_residual > 0

    @pytest.mark.parametrize("weights", ["ew", "eo"])
    def test_composite_key_uniformity(self, composite_query, weights):
        sampler = JoinSampler(composite_query, weights=weights, seed=43)
        population = sorted(join_result_set(composite_query))
        assert population  # fixture sanity: the composite join is non-empty
        draws = sampler.sample_batch(1500)
        assert_uniform([d.value for d in draws], population)

    def test_mixed_type_key_column_keeps_all_results(self):
        """A join-key column mixing ints and strings must not be stringified
        by the columnar layer (np.asarray([1, 'x']) -> ['1', 'x']), which
        would silently drop the integer-keyed join results."""
        r = Relation("R", ["k", "a"], [(1, 10), ("x", 20)])
        s = Relation("S", ["k", "b"], [(1, 100), ("x", 200)])
        query = JoinQuery(
            "mixed",
            [r, s],
            [JoinCondition("R", "k", "S", "k")],
            [OutputAttribute("a", "R", "a"), OutputAttribute("b", "S", "b")],
        )
        sampler = JoinSampler(query, weights="ew", seed=67)
        assert sampler.size_bound == 2.0
        values = {d.value for d in sampler.sample_batch(100)}
        assert values == {(10, 100), (20, 200)}

    def test_string_key_uniformity(self, string_key_query):
        sampler = JoinSampler(string_key_query, weights="eo", seed=47)
        population = sorted(join_result_set(string_key_query))
        draws = sampler.sample_batch(1200)
        assert_uniform([d.value for d in draws], population)

    def test_assignments_are_consistent(self, chain_query):
        sampler = JoinSampler(chain_query, seed=53)
        for draw in sampler.sample_batch(50):
            assert chain_query.project_assignment(draw.assignment) == draw.value

    def test_values_are_python_typed(self, chain_query):
        draw = JoinSampler(chain_query, seed=59).sample_batch(1)[0]
        assert all(not isinstance(v, np.generic) for v in draw.value)
        assert all(isinstance(p, int) for p in draw.assignment.values())

    def test_buffer_refill_preserves_counts(self, chain_query):
        sampler = JoinSampler(chain_query, seed=61)
        values = [sampler.sample().value for _ in range(300)]
        assert len(values) == 300
        assert sampler.stats.accepted >= 300

    def test_empty_join_raises(self):
        from tests.conftest import make_chain_query

        query = make_chain_query("empty", r_rows=[(1, 99)], s_rows=[(10, 100)])
        sampler = JoinSampler(query, weights="ew", seed=0)
        with pytest.raises(RuntimeError):
            sampler.sample_batch(1, max_attempts=64)


class TestWanderJoinBatch:
    def test_batch_walks_match_scalar_statistics(self, chain_query):
        scalar = WanderJoin(chain_query, seed=71)
        scalar_successes = sum(1 for w in (scalar.walk() for _ in range(2000)) if w.success)
        batched = WanderJoin(chain_query, seed=72)
        results = batched.walks(2000)
        assert len(results) == 2000
        batch_successes = sum(1 for w in results if w.success)
        assert batch_successes / 2000 == pytest.approx(scalar_successes / 2000, abs=0.06)

    def test_batch_walk_values_and_probabilities(self, chain_query):
        population = join_result_set(chain_query)
        walker = WanderJoin(chain_query, seed=73)
        ht = []
        for walk in walker.walks(1500):
            if walk.success:
                assert walk.value in population
                assert 0.0 < walk.probability <= 1.0
                assert chain_query.project_assignment(walk.assignment) == walk.value
            ht.append(walk.inverse_probability)
        estimate = sum(ht) / len(ht)
        assert estimate == pytest.approx(len(population), rel=0.25)

    def test_cyclic_batch_walks_respect_residuals(self, cyclic_query):
        walker = WanderJoin(cyclic_query, seed=79)
        population = join_result_set(cyclic_query)
        for walk in walker.walks(600):
            if walk.success:
                assert walk.value in population


class TestBatchedCategorical:
    def test_distribution(self):
        rng = ensure_rng(7)
        selector = BatchedCategorical(rng, ["a", "b"], [3.0, 1.0], batch_size=64)
        draws = [selector.draw() for _ in range(4000)]
        assert draws.count("a") / 4000 == pytest.approx(0.75, abs=0.04)

    def test_uniform_fallback_on_zero_weights(self):
        rng = ensure_rng(8)
        selector = BatchedCategorical(rng, ["a", "b", "c"], [0.0, 0.0, 0.0])
        draws = {selector.draw() for _ in range(300)}
        assert draws == {"a", "b", "c"}

    def test_rejects_bad_arguments(self):
        rng = ensure_rng(9)
        with pytest.raises(ValueError):
            BatchedCategorical(rng, [], [])
        with pytest.raises(ValueError):
            BatchedCategorical(rng, ["a"], [1.0, 2.0])
