"""Property-based tests (hypothesis) for the AQP layer.

Two invariants are pinned here:

* **planner capability**: whatever the query shape — chain, star, cyclic,
  predicates pushed down or not, unions of several joins — the cost-based
  planner only ever hands out a backend that can actually sample that shape
  (e.g. wander join is never selected for cyclic templates or non-pushed
  predicates, and unions always get the online union sampler);
* **merge law**: an :class:`~repro.aqp.AggregateAccumulator` fed one stream
  in chunks, with the partial accumulators merged back in *any* order,
  produces bit-identical estimates and confidence intervals to a single
  accumulator fed the whole stream (exactly-rounded summation);
* **parallel determinism**: the parallel sampling service built on that
  merge law answers bit-identically for any worker count — same query, same
  seed, same shard plan ⇒ same merged estimate and CI bounds whether 1, 2,
  3, or 7 workers executed the shards.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.aqp import (
    AggregateAccumulator,
    AggregateSpec,
    SamplerPlanner,
    supported_backends,
)
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation

# --------------------------------------------------------------------- shapes
rows_ab = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 3)), min_size=1, max_size=10
)
rows_bc = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 6)), min_size=1, max_size=10
)
rows_ca = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=10
)


def _chain(rows_r, rows_s, predicates, push_down):
    return JoinQuery(
        "chain",
        [Relation("R", ["a", "b"], rows_r), Relation("S", ["b", "c"], rows_s)],
        [JoinCondition("R", "b", "S", "b")],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
        predicates=predicates,
        push_down_predicates=push_down,
    )


def _star(rows_r, rows_s, rows_t):
    return JoinQuery(
        "star",
        [
            Relation("C", ["a", "b"], rows_r),
            Relation("D", ["a", "y"], [(a, y) for a, y in rows_s]),
            Relation("E", ["a", "z"], [(a, z) for a, z in rows_t]),
        ],
        [JoinCondition("C", "a", "D", "a"), JoinCondition("C", "a", "E", "a")],
        [OutputAttribute("b", "C", "b"), OutputAttribute("y", "D", "y")],
    )


def _triangle(rows_r, rows_s, rows_t):
    return JoinQuery(
        "triangle",
        [
            Relation("R", ["a", "b"], rows_r),
            Relation("S", ["b", "c"], rows_s),
            Relation("T", ["c", "a"], rows_t),
        ],
        [
            JoinCondition("R", "b", "S", "b"),
            JoinCondition("S", "c", "T", "c"),
            JoinCondition("T", "a", "R", "a"),
        ],
        [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
    )


@st.composite
def query_shapes(draw):
    """A random single query (chain / star / cyclic, predicates or not)."""
    shape = draw(st.sampled_from(["chain", "chain-pred", "star", "triangle"]))
    if shape == "triangle":
        return _triangle(draw(rows_ab), draw(rows_bc), draw(rows_ca))
    if shape == "star":
        return _star(draw(rows_ab), draw(rows_ab), draw(rows_ab))
    predicates = None
    push_down = True
    if shape == "chain-pred":
        threshold = draw(st.integers(0, 6))
        predicates = {"R": Comparison("a", ">=", threshold)}
        push_down = draw(st.booleans())
    rows_r = draw(rows_ab)
    if predicates is not None and push_down:
        # Keep the pushed-down relation non-trivial (JoinQuery filters it).
        rows_r = rows_r + [(6, 0)]
    return _chain(rows_r, draw(rows_bc), predicates, push_down)


@st.composite
def union_shapes(draw):
    """2-3 union-compatible chain joins."""
    count = draw(st.integers(2, 3))
    return [
        JoinQuery(
            f"J{i}",
            [
                Relation("R", ["a", "b"], draw(rows_ab)),
                Relation("S", ["b", "c"], draw(rows_bc)),
            ],
            [JoinCondition("R", "b", "S", "b")],
            [OutputAttribute("a", "R", "a"), OutputAttribute("c", "S", "c")],
        )
        for i in range(count)
    ]


class TestPlannerCapability:
    @given(query=query_shapes(), target=st.integers(1, 100_000))
    @settings(max_examples=120, deadline=None)
    def test_backend_always_supported(self, query, target):
        plan = SamplerPlanner(query, target_samples=target).plan()
        assert plan.backend in supported_backends(query)
        assert plan.batch_size >= 1

    @given(query=query_shapes(), target=st.integers(1, 100_000))
    @settings(max_examples=120, deadline=None)
    def test_wander_join_never_on_unsupported_shapes(self, query, target):
        plan = SamplerPlanner(query, target_samples=target).plan()
        if query.is_cyclic or (query.predicates and not query.push_down_predicates):
            assert plan.backend != "wander-join"
            assert "wander-join" not in supported_backends(query)

    @given(queries=union_shapes(), target=st.integers(1, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_unions_always_get_the_union_sampler(self, queries, target):
        assert supported_backends(queries) == ("online-union",)
        plan = SamplerPlanner(queries, target_samples=target).plan()
        assert plan.backend == "online-union"


# ------------------------------------------------------------------- merge law
sample_values = st.lists(
    st.tuples(
        st.integers(-2, 2),
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=40,
)

specs = st.sampled_from(
    [
        AggregateSpec("count"),
        AggregateSpec("sum", attribute="x"),
        AggregateSpec("avg", attribute="x"),
        AggregateSpec("sum", attribute="x", group_by="k"),
        AggregateSpec("avg", attribute="x", group_by="k"),
    ]
)


@st.composite
def chunked_streams(draw):
    """A sample stream, a partition into chunks, and a merge order."""
    values = draw(sample_values)
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(0, len(values)), min_size=0, max_size=4
            )
        )
    )
    chunks = []
    previous = 0
    for b in boundaries + [len(values)]:
        chunks.append(values[previous:b])
        previous = b
    extras = [draw(st.integers(0, 5)) for _ in chunks]
    order = draw(st.permutations(range(len(chunks))))
    return values, chunks, extras, order


class TestMergeLaw:
    SCHEMA = ("k", "x")

    @given(spec=specs, stream=chunked_streams(), weight=st.floats(0.5, 1e4))
    @settings(max_examples=150, deadline=None)
    def test_any_chunking_order_gives_identical_estimates(self, spec, stream, weight):
        values, chunks, extras, order = stream
        total_attempts = sum(len(c) + e for c, e in zip(chunks, extras))

        whole = AggregateAccumulator(spec, self.SCHEMA)
        whole.observe(values, attempts=total_attempts, weight=weight)

        partials = []
        for chunk, extra in zip(chunks, extras):
            acc = AggregateAccumulator(spec, self.SCHEMA)
            acc.observe(chunk, attempts=len(chunk) + extra, weight=weight)
            partials.append(acc)
        merged = partials[order[0]]
        for i in order[1:]:
            merged.merge(partials[i])

        assert merged.attempts == whole.attempts
        assert merged.accepted == whole.accepted
        a, b = whole.estimate(), merged.estimate()
        assert set(a.estimates) == set(b.estimates)
        for group in a.estimates:
            ea, eb = a.estimates[group], b.estimates[group]
            assert _same(ea.estimate, eb.estimate), (group, ea, eb)
            assert _same(ea.ci_low, eb.ci_low), (group, ea, eb)
            assert _same(ea.ci_high, eb.ci_high), (group, ea, eb)

    @given(stream=chunked_streams())
    @settings(max_examples=80, deadline=None)
    def test_merge_law_with_per_sample_weights(self, stream):
        values, chunks, extras, order = stream
        spec = AggregateSpec("sum", attribute="x")
        total_attempts = sum(len(c) + e for c, e in zip(chunks, extras))

        def weights_for(chunk):
            return [1.0 + (abs(hash(v)) % 97) for v in chunk]

        whole = AggregateAccumulator(spec, self.SCHEMA)
        whole.observe(values, attempts=total_attempts, weights=weights_for(values))
        partials = []
        for chunk, extra in zip(chunks, extras):
            acc = AggregateAccumulator(spec, self.SCHEMA)
            acc.observe(chunk, attempts=len(chunk) + extra, weights=weights_for(chunk))
            partials.append(acc)
        merged = partials[order[0]]
        for i in order[1:]:
            merged.merge(partials[i])
        assert _same(whole.estimate().overall.estimate, merged.estimate().overall.estimate)

    def test_merge_rejects_mismatched_specs(self):
        a = AggregateAccumulator(AggregateSpec("count"), self.SCHEMA)
        b = AggregateAccumulator(AggregateSpec("sum", attribute="x"), self.SCHEMA)
        try:
            a.merge(b)
        except ValueError as err:
            assert "identical spec" in str(err)
        else:  # pragma: no cover - defended by the assert
            raise AssertionError("merge of mismatched specs must fail")


def _same(x: float, y: float) -> bool:
    """Bit-identical comparison that treats NaN == NaN (empty AVG groups)."""
    if math.isnan(x) and math.isnan(y):
        return True
    return x == y


# -------------------------------------------------------- parallel determinism
class TestParallelWorkerInvariance:
    """Worker count is an execution knob, never part of the answer.

    The parallel service plans a fixed shard list from (query, seed, shards)
    and merges shard accumulators through the merge law pinned above, so any
    worker count must reproduce the single-worker report bit for bit.
    """

    @given(
        workers=st.sampled_from([1, 2, 3, 7]),
        shards=st.integers(1, 6),
        seed=st.integers(0, 2**20),
        count=st.integers(0, 48),
        rows_r=rows_ab,
        rows_s=rows_bc,
    )
    @settings(max_examples=25, deadline=None)
    def test_any_worker_count_gives_identical_reports(
        self, workers, shards, seed, count, rows_r, rows_s
    ):
        from repro.parallel import parallel_aggregate

        query = _chain(rows_r, rows_s, None, True)
        spec = AggregateSpec("sum", attribute="c")
        kwargs = dict(
            seed=seed,
            shards=shards,
            method="exact-weight",
            execution="thread",
            max_attempts=10_000,
        )
        reference = parallel_aggregate(query, spec, count, workers=1, **kwargs)
        run = parallel_aggregate(query, spec, count, workers=workers, **kwargs)
        assert run.attempts == reference.attempts
        assert run.accepted == reference.accepted
        assert set(run.estimates) == set(reference.estimates)
        for group in reference.estimates:
            expected, observed = reference.estimates[group], run.estimates[group]
            assert _same(expected.estimate, observed.estimate)
            assert _same(expected.ci_low, observed.ci_low)
            assert _same(expected.ci_high, observed.ci_high)

    @given(workers=st.sampled_from([2, 3, 7]), seed=st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_sampling_mode_worker_invariance(self, workers, seed):
        from repro.parallel import parallel_sample

        query = _chain([(i, i % 3) for i in range(12)], [(b, b + 10) for b in range(3)],
                       None, True)
        reference = parallel_sample(query, 24, workers=1, seed=seed, execution="thread")
        run = parallel_sample(query, 24, workers=workers, seed=seed, execution="thread")
        assert run.values == reference.values
        assert run.attempts == reference.attempts
